// Quire (exact accumulator) tests: exactness of long dot products, correct
// final rounding, sign handling, and the fused ops built on top.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "mp/mpreal.hpp"
#include "mp/oracle.hpp"
#include "posit/posit.hpp"
#include "posit/quire.hpp"

namespace {

using pstab::Posit;
using pstab::Quire;

TEST(Quire, StartsZeroAndClears) {
  Quire<16, 2> q;
  EXPECT_TRUE(q.is_zero());
  q.add(Posit<16, 2>::one());
  EXPECT_FALSE(q.is_zero());
  q.clear();
  EXPECT_TRUE(q.is_zero());
}

TEST(Quire, SingleValueRoundTrips) {
  // Adding one posit and rounding back must reproduce it exactly.
  for (std::uint32_t b = 0; b < 65536; ++b) {
    const auto p = Posit<16, 2>::from_bits(b);
    if (p.is_nar()) continue;
    Quire<16, 2> q;
    q.add(p);
    EXPECT_EQ(q.to_posit().bits(), p.bits()) << b;
  }
}

TEST(Quire, SingleProductMatchesExactRounding) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const auto a = Posit<16, 2>::from_bits(rng() & 0xffff);
    const auto b = Posit<16, 2>::from_bits(rng() & 0xffff);
    if (a.is_nar() || b.is_nar()) continue;
    Quire<16, 2> q;
    q.add_product(a, b);
    const mpf_class exact = pstab::mp::to_mpf(a) * pstab::mp::to_mpf(b);
    const auto want = exact == 0 ? Posit<16, 2>::zero()
                                 : pstab::mp::oracle_round<16, 2>(exact);
    EXPECT_EQ(q.to_posit().bits(), want.bits()) << i;
  }
}

TEST(Quire, ExtremeProductsStayExact) {
  using P = Posit<16, 2>;
  // maxpos^2 and minpos^2 are at the very edges of the quire's range.
  {
    Quire<16, 2> q;
    q.add_product(P::maxpos(), P::maxpos());
    EXPECT_EQ(q.to_posit().bits(), P::maxpos().bits());  // saturates
    q.sub_product(P::maxpos(), P::maxpos());
    EXPECT_TRUE(q.is_zero());
  }
  {
    Quire<16, 2> q;
    q.add_product(P::minpos(), P::minpos());
    EXPECT_EQ(q.to_posit().bits(), P::minpos().bits());  // saturates up
    q.sub_product(P::minpos(), P::minpos());
    EXPECT_TRUE(q.is_zero());
  }
}

TEST(Quire, CancellationIsExact) {
  // Classic quire showcase: sum of large +x, -x pairs plus a tiny tail is
  // recovered exactly, where round-per-op arithmetic loses it completely.
  using P = Posit<32, 2>;
  const P big = P::from_double(1e20);
  const P tiny = P::from_double(3.0);
  Quire<32, 2> q;
  q.add(big);
  q.add(tiny);
  q.add(-big);
  EXPECT_EQ(q.to_posit().to_double(), 3.0);
  // Round-per-op loses the tiny term.
  const P seq = (big + tiny) + (-big);
  EXPECT_EQ(seq.to_double(), 0.0);
}

TEST(Quire, DotProductMatchesGmp) {
  using P = Posit<16, 2>;
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const int n = 1 + int(rng() % 40);
    std::vector<P> x(n), y(n);
    mpf_class exact(0, pstab::mp::kPrecBits);
    for (int i = 0; i < n; ++i) {
      x[i] = P::from_bits(rng() & 0xffff);
      y[i] = P::from_bits(rng() & 0xffff);
      if (x[i].is_nar()) x[i] = P::zero();
      if (y[i].is_nar()) y[i] = P::zero();
      exact += pstab::mp::to_mpf(x[i]) * pstab::mp::to_mpf(y[i]);
    }
    const P got = pstab::quire_dot(x.data(), y.data(), x.size());
    const P want =
        exact == 0 ? P::zero() : pstab::mp::oracle_round<16, 2>(exact);
    EXPECT_EQ(got.bits(), want.bits()) << "trial " << trial;
  }
}

TEST(Quire, CarryGuardBoundaryCrossing) {
  // 2^17 accumulations of maxpos * maxpos push the running sum 17 bits into
  // the carry-guard region above the maxpos^2 position — carries must ripple
  // across the guard-word boundary and back.  For Posit<16,1>: maxpos =
  // 2^28, so each product is 2^56 and the full sum is exactly 2^73.
  using P = Posit<16, 1>;
  constexpr int kCopies = 1 << 17;
  Quire<16, 1> q;
  for (int i = 0; i < kCopies; ++i) q.add_product(P::maxpos(), P::maxpos());

  mpf_class exact(0, pstab::mp::kPrecBits);
  exact = pstab::mp::to_mpf(P::maxpos()) * pstab::mp::to_mpf(P::maxpos());
  mpf_mul_2exp(exact.get_mpf_t(), exact.get_mpf_t(), 17);  // * 2^17
  const P want_sum = pstab::mp::oracle_round<16, 1>(exact);
  EXPECT_EQ(q.to_posit().bits(), want_sum.bits());

  // Drain all but one copy: the guard bits must carry back down and leave
  // exactly maxpos^2 (rounds to maxpos by saturation).
  for (int i = 0; i < kCopies - 1; ++i)
    q.sub_product(P::maxpos(), P::maxpos());
  const mpf_class one_prod =
      pstab::mp::to_mpf(P::maxpos()) * pstab::mp::to_mpf(P::maxpos());
  const P want_one = pstab::mp::oracle_round<16, 1>(one_prod);
  EXPECT_EQ(q.to_posit().bits(), want_one.bits());
  q.sub_product(P::maxpos(), P::maxpos());
  EXPECT_TRUE(q.is_zero());

  // Same crossing with a minpos tail riding along: after the drain the far
  // low end of the quire must still hold it exactly.
  Quire<16, 1> q2;
  q2.add(P::minpos());
  for (int i = 0; i < kCopies; ++i) q2.add_product(P::maxpos(), P::maxpos());
  for (int i = 0; i < kCopies; ++i) q2.sub_product(P::maxpos(), P::maxpos());
  EXPECT_EQ(q2.to_posit().bits(), P::minpos().bits());
}

TEST(Quire, NaRPoisons) {
  Quire<16, 2> q;
  q.add(Posit<16, 2>::one());
  q.add(Posit<16, 2>::nar());
  EXPECT_TRUE(q.is_nar());
  EXPECT_TRUE(q.to_posit().is_nar());
}

TEST(Quire, FmaMatchesExact) {
  using P = Posit<32, 2>;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const P a = P::from_bits(rng() & 0xffffffff);
    const P b = P::from_bits(rng() & 0xffffffff);
    const P c = P::from_bits(rng() & 0xffffffff);
    if (a.is_nar() || b.is_nar() || c.is_nar()) continue;
    const mpf_class exact = pstab::mp::to_mpf(a) * pstab::mp::to_mpf(b) +
                            pstab::mp::to_mpf(c);
    const P want =
        exact == 0 ? P::zero() : pstab::mp::oracle_round<32, 2>(exact);
    EXPECT_EQ(pstab::fma(a, b, c).bits(), want.bits()) << i;
  }
}

TEST(Quire, FmaBeatsUnfusedWhenCatastrophic) {
  using P = Posit<32, 2>;
  // a*b ~ 1 + eps, c = -1: fused keeps the eps, unfused can lose it.
  const P a = P::one().next_up();   // 1 + 2^-27
  const P b = P::one().next_up();
  const P c = -P::one();
  const double fused = pstab::fma(a, b, c).to_double();
  EXPECT_NEAR(fused, std::ldexp(1.0, -26), std::ldexp(1.0, -40));
}

}  // namespace
