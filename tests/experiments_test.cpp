// Tests of the core experiment drivers and of the paper-shape invariants
// they must reproduce, parameterized over the full Table I suite
// (INSTANTIATE_TEST_SUITE_P): every suite matrix must satisfy the structural
// properties the paper's figures rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <regex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel_for.hpp"
#include "core/experiments.hpp"
#include "core/histogram.hpp"
#include "core/kernels_bench.hpp"
#include "core/precision.hpp"
#include "core/report_json.hpp"
#include "la/cholesky.hpp"
#include "la/kernels/simd/simd.hpp"
#include "matrices/suite.hpp"

namespace {

using namespace pstab;

// ---------------------------------------------------------------------------
// Per-matrix structural invariants, across the whole suite.

class SuiteMatrixP : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteMatrixP, GeneratedMatrixMatchesSpecDecades) {
  const auto& g = matrices::suite_matrix(GetParam());
  EXPECT_NEAR(std::log10(g.cond_measured()), std::log10(g.spec.cond), 0.35)
      << GetParam();
  EXPECT_NEAR(std::log10(g.lambda_max), std::log10(g.spec.norm2), 0.15)
      << GetParam();
}

TEST_P(SuiteMatrixP, SymmetricPositiveDefinite) {
  const auto& g = matrices::suite_matrix(GetParam());
  EXPECT_TRUE(g.dense.symmetric(1e-12));
  EXPECT_EQ(la::cholesky(g.dense).status, la::CholStatus::ok);
}

TEST_P(SuiteMatrixP, Float64CgConverges) {
  // Sanity floor for every experiment: double CG must converge on every
  // suite matrix at the paper's 1e-5 criterion.
  const auto& g = matrices::suite_matrix(GetParam());
  la::CgOptions opt;
  opt.max_iter = 15 * g.n;
  const auto cell =
      core::cg_in_format<double>(g.csr, matrices::paper_rhs(g.dense), opt);
  EXPECT_EQ(cell.status, la::CgStatus::converged) << GetParam();
  EXPECT_LT(cell.true_relres, 1e-4) << GetParam();
}

TEST_P(SuiteMatrixP, RescaledCholeskyPositBeatsFloat) {
  // The Fig 9 invariant, the paper's strongest claim: after diagonal
  // re-scaling, Posit(32,2) achieves a lower backward error than Float32.
  const auto& g = matrices::suite_matrix(GetParam());
  core::SolveRequest req;
  req.rescale = true;
  const auto row = core::run_cholesky_experiment(g, req);
  if (row.f32.converged() && row.p32_2.converged()) {
    EXPECT_GT(row.extra_digits(row.p32_2), 0.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTable1Matrices, SuiteMatrixP,
    ::testing::Values("plat362", "mhd416b", "662_bus", "lund_b", "bcsstk02",
                      "685_bus", "1138_bus", "494_bus", "nos5", "bcsstk22",
                      "nos6", "bcsstk09", "lund_a", "nos1", "bcsstk01",
                      "bcsstk06", "msc00726", "bcsstk08", "nos2"),
    [](const auto& info) {
      std::string n = info.param;
      for (auto& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

// ---------------------------------------------------------------------------
// Driver-level behaviour on a single cheap matrix.

TEST(CgExperiment, ReportsAllFourFormats) {
  const auto& g = matrices::suite_matrix("bcsstk02");  // n = 66
  const auto row = core::run_cg_experiment(g);
  EXPECT_EQ(row.matrix, "bcsstk02");
  EXPECT_TRUE(row.f64.converged());
  EXPECT_TRUE(row.f32.converged());
  EXPECT_TRUE(row.p32_2.converged());
  EXPECT_TRUE(row.p32_3.converged());
  // Converged runs honour the paper's backward-error criterion in double.
  EXPECT_LT(row.f32.true_relres, 1e-4);
  EXPECT_LT(row.p32_2.true_relres, 1e-4);
}

TEST(CgExperiment, PctImprovementSignConvention) {
  core::CgRow row;
  row.f32.status = la::CgStatus::converged;
  row.f32.iterations = 100;
  core::CgCell posit;
  posit.status = la::CgStatus::converged;
  posit.iterations = 80;
  EXPECT_DOUBLE_EQ(row.pct_improvement(posit), 20.0);  // posit 20% better
  posit.iterations = 150;
  EXPECT_DOUBLE_EQ(row.pct_improvement(posit), -50.0);  // posit worse
  posit.status = la::CgStatus::breakdown;
  EXPECT_TRUE(std::isnan(row.pct_improvement(posit)));
}

TEST(CholExperiment, ExtraDigitsConvention) {
  core::CholRow row;
  row.f32.status = la::CholStatus::ok;
  row.f32.true_relres = 1e-6;
  core::CholCell posit;
  posit.status = la::CholStatus::ok;
  posit.true_relres = 1e-7;
  EXPECT_NEAR(row.extra_digits(posit), 1.0, 1e-12);  // 10x better = 1 digit
  posit.true_relres = 1e-5;
  EXPECT_NEAR(row.extra_digits(posit), -1.0, 1e-12);
  posit.status = la::CholStatus::not_positive_definite;
  EXPECT_TRUE(std::isnan(row.extra_digits(posit)));
}

TEST(IrExperiment, PctReductionUsesBestPosit) {
  core::IrRow row;
  row.f16.status = la::IrStatus::converged;
  row.f16.iterations = 40;
  row.p16_1.status = la::IrStatus::converged;
  row.p16_1.iterations = 10;
  row.p16_2.status = la::IrStatus::converged;
  row.p16_2.iterations = 25;
  EXPECT_DOUBLE_EQ(row.pct_reduction(), 75.0);
  // A capped format counts as 1000 (paper convention).
  row.p16_1.status = la::IrStatus::max_iterations;
  EXPECT_DOUBLE_EQ(row.pct_reduction(), 37.5);
}

// ---------------------------------------------------------------------------
// Parallel grid runner: determinism and ordering.

/// RAII override of PSTAB_THREADS, restored on scope exit.
class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* v) {
    const char* old = std::getenv("PSTAB_THREADS");
    if (old) saved_ = old;
    had_ = old != nullptr;
    setenv("PSTAB_THREADS", v, 1);
  }
  ~ThreadsEnv() {
    if (had_)
      setenv("PSTAB_THREADS", saved_.c_str(), 1);
    else
      unsetenv("PSTAB_THREADS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

std::vector<const matrices::GeneratedMatrix*> small_suite() {
  return {&matrices::suite_matrix("bcsstk02"), &matrices::suite_matrix("nos6"),
          &matrices::suite_matrix("494_bus")};
}

TEST(ParallelFor, ThreadCountHonorsEnv) {
  ThreadsEnv env("3");
  EXPECT_EQ(parallel_threads(), 3);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadsEnv env("8");
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadsEnv env("4");
  EXPECT_THROW(
      parallel_for(64,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ExperimentGrid, CgSuiteDeterministicAcrossThreadCounts) {
  const auto ms = small_suite();  // generate before the parallel region
  core::SolveRequest req;
  req.record_history = true;

  std::vector<core::CgRow> serial, parallel;
  {
    ThreadsEnv env("1");
    serial = core::run_cg_suite(ms, req);
  }
  {
    ThreadsEnv env("8");
    parallel = core::run_cg_suite(ms, req);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].matrix, ms[i]->spec.name);  // deterministic ordering
    EXPECT_EQ(parallel[i].matrix, serial[i].matrix);
    for (auto get :
         {+[](const core::CgRow& r) { return &r.f64; },
          +[](const core::CgRow& r) { return &r.f32; },
          +[](const core::CgRow& r) { return &r.p32_2; },
          +[](const core::CgRow& r) { return &r.p32_3; }}) {
      const core::CgCell& s = *get(serial[i]);
      const core::CgCell& p = *get(parallel[i]);
      EXPECT_EQ(s.status, p.status) << serial[i].matrix;
      EXPECT_EQ(s.iterations, p.iterations) << serial[i].matrix;
      EXPECT_EQ(s.true_relres, p.true_relres) << serial[i].matrix;
      ASSERT_EQ(s.history.size(), p.history.size()) << serial[i].matrix;
      for (std::size_t k = 0; k < s.history.size(); ++k)
        EXPECT_EQ(s.history[k], p.history[k])
            << serial[i].matrix << " iter " << k;
      EXPECT_FALSE(s.history.empty()) << serial[i].matrix;
    }
  }
}

TEST(ExperimentGrid, CholeskySuiteDeterministicAcrossThreadCounts) {
  const auto ms = small_suite();
  std::vector<core::CholRow> serial, parallel;
  {
    ThreadsEnv env("1");
    serial = core::run_cholesky_suite(ms);
  }
  {
    ThreadsEnv env("8");
    parallel = core::run_cholesky_suite(ms);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].matrix, parallel[i].matrix);
    EXPECT_EQ(serial[i].f32.status, parallel[i].f32.status);
    EXPECT_EQ(serial[i].f32.true_relres, parallel[i].f32.true_relres);
    EXPECT_EQ(serial[i].p32_2.true_relres, parallel[i].p32_2.true_relres);
    EXPECT_EQ(serial[i].p32_3.true_relres, parallel[i].p32_3.true_relres);
  }
}

// ---------------------------------------------------------------------------
// Artifact byte-determinism: pstab-results-v1 documents promise that nothing
// time- or thread-dependent lands in the file.  The kernels bench document
// necessarily carries throughput numbers, so its VALUE fields are compared
// after masking the timing keys; solver documents must be byte-identical
// outright — whatever PSTAB_THREADS says and whichever vector ISA executed.

namespace simd = pstab::la::kernels::simd;

/// RAII pin of the vector ISA (la/kernels/simd), cleared on scope exit.
class ForcedIsa {
 public:
  explicit ForcedIsa(simd::Isa i) { simd::force_isa(i); }
  ~ForcedIsa() { simd::clear_forced_isa(); }
};

/// Neutralize the throughput fields (and the host-dependent ISA tag) of a
/// kernels bench document, leaving every value field — n, kernel, format,
/// and both bit-identity verdicts — intact for exact comparison.
std::string mask_timing(std::string s) {
  static const std::regex kTiming(
      "\"(scalar_mops|batched_mops|simd_mops|speedup|simd_speedup)\":"
      "[^,}\\]]*");
  s = std::regex_replace(s, kTiming, "\"$1\":0");
  static const std::regex kIsa("\"simd_isa\":\"[a-z0-9]*\"");
  return std::regex_replace(s, kIsa, "\"simd_isa\":\"-\"");
}

TEST(ArtifactDeterminism, KernelsBenchValueFieldsAcrossThreadsAndIsa) {
  const auto doc = [] {
    return core::kernels_results_json(core::run_kernels_bench(128, 8), 128);
  };
  std::string t1, t8, iso;
  {
    ThreadsEnv env("1");
    t1 = doc();
  }
  {
    ThreadsEnv env("8");
    t8 = doc();
  }
  {
    ThreadsEnv env("1");
    ForcedIsa f(simd::Isa::kScalar);  // vector legs routed to the scalar core
    iso = doc();
  }
  EXPECT_EQ(mask_timing(t1), mask_timing(t8));
  EXPECT_EQ(mask_timing(t1), mask_timing(iso));
}

TEST(ArtifactDeterminism, CgResultsByteIdenticalAcrossIsaAndThreads) {
  // The strongest form of the SIMD bit-identity contract: a whole CG
  // experiment grid through Backend::Simd serializes to the same bytes on
  // the native ISA (8 threads) as on the forced-scalar path (1 thread).
  const auto ms = small_suite();
  core::SolveRequest req;
  req.backend = la::kernels::Backend::Simd;
  std::string native, scalar_isa;
  {
    ThreadsEnv env("8");
    native = core::cg_results_json("cg", core::run_cg_suite(ms, req), req);
  }
  {
    ThreadsEnv env("1");
    ForcedIsa f(simd::Isa::kScalar);
    scalar_isa = core::cg_results_json("cg", core::run_cg_suite(ms, req), req);
  }
  EXPECT_EQ(native, scalar_isa);
}

// ---------------------------------------------------------------------------
// Precision model (Fig 3) and histogram (Fig 5).

TEST(PrecisionModel, GoldenZonePeaksAtOne) {
  // Posit(32,2) at 1.0: 28 significand bits (27 fraction + hidden) = 8.43
  // decimal digits; Float32 flat at 24 bits = 7.22 digits.
  EXPECT_NEAR(core::digits_at<Posit32_2>(1.0), 28 * std::log10(2.0), 1e-9);
  EXPECT_NEAR(core::digits_at<float>(1.0), 24 * std::log10(2.0), 1e-9);
  EXPECT_NEAR(core::digits_at<float>(1e30), 24 * std::log10(2.0), 1e-9);
  // Taper: strictly fewer bits three decades out than at 1.
  EXPECT_LT(core::digits_at<Posit32_2>(1e9), core::digits_at<Posit32_2>(1.0));
  // Posit(32,3) tapers slower than Posit(32,2).
  EXPECT_GT(core::digits_at<Posit32_3>(1e9), core::digits_at<Posit32_2>(1e9));
}

TEST(PrecisionModel, CrossoverNearTenToFifth) {
  // The paper: Posit(32,2) has better relative precision until ~1e-5.
  EXPECT_GE(core::digits_at<Posit32_2>(1e-4), core::digits_at<float>(1e-4));
  EXPECT_LE(core::digits_at<Posit32_2>(1e-6), core::digits_at<float>(1e-6));
}

TEST(PrecisionModel, HalfRangeEdges) {
  EXPECT_EQ(core::significand_bits_at(Half{}, 65504.0), 11);
  EXPECT_EQ(core::significand_bits_at(Half{}, 1e6), 0);     // overflow
  EXPECT_EQ(core::significand_bits_at(Half{}, 1e-9), 0);    // underflow
  EXPECT_GT(core::significand_bits_at(Half{}, 1e-5), 0);    // subnormal
  EXPECT_LT(core::significand_bits_at(Half{}, 1e-5), 11);
}

TEST(Histogram, WeightsMatricesEqually) {
  auto m1 = la::Csr<double>::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  auto m2 = la::Csr<double>::from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {0, 1, 1.0}});
  std::map<int, double> h;
  core::accumulate_extra_bits<32, 2>(m1, h);
  core::accumulate_extra_bits<32, 2>(m2, h);
  double total = 0;
  for (auto& [k, v] : h) total += v;
  EXPECT_NEAR(total, 2.0, 1e-12);  // one unit of weight per matrix
}

TEST(Histogram, GoldenZoneEntriesGetPlusFour) {
  // Entries near 1 carry 27 posit fraction bits vs Float32's 23: +4.
  auto m = la::Csr<double>::from_triplets(1, 1, {{0, 0, 1.5}});
  std::map<int, double> h;
  core::accumulate_extra_bits<32, 2>(m, h);
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h.begin()->first, 4);
}

TEST(Histogram, Float32FractionBitsModel) {
  EXPECT_EQ(core::float32_fraction_bits(1.0), 23);
  EXPECT_EQ(core::float32_fraction_bits(1e38), 23);
  EXPECT_EQ(core::float32_fraction_bits(1e39), 0);   // overflow
  EXPECT_EQ(core::float32_fraction_bits(0.0), 0);
  EXPECT_LT(core::float32_fraction_bits(1e-40), 23);  // subnormal
  EXPECT_GT(core::float32_fraction_bits(1e-40), 0);
}

}  // namespace
