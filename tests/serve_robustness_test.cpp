// Service-level robustness: tick budgets (deadline_exceeded determinism and
// partial reports), admission control (caps / bounded queue / draining), the
// hang watchdog, write-failure containment, TCP client-death isolation, and
// the seeded chaos harness.  Companion to serve_test.cpp, which covers the
// protocol and the happy-path engine.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.hpp"
#include "core/solve_api.hpp"
#include "matrices/suite.hpp"
#include "serve/chaos.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace pstab;

// ---------------------------------------------------------------------------
// Tick budgets: deterministic deadline_exceeded with a usable partial report.

TEST(Budget, CgPartialReportStopsAtTheTick) {
  core::SolveRequest req;
  req.matrix = "bcsstk22";
  req.budget_ticks = 3;
  req.record_history = true;
  const auto row =
      core::run_cg_experiment(matrices::suite_matrix(req.matrix), req);
  for (const core::CgCell* c : {&row.f64, &row.f32, &row.p32_2, &row.p32_3}) {
    EXPECT_EQ(c->status, la::SolveStatus::deadline_exceeded);
    // One tick per iteration: the third tick is spent entering iteration 2,
    // the fourth (unavailable) would have entered iteration 3.
    EXPECT_EQ(c->iterations, 3);
    EXPECT_EQ(c->history.size(), 3u);  // the partial history survives
    EXPECT_GT(c->final_relres, 0.0);
  }
}

TEST(Budget, LuIrReportsDeadlineNotDivergence) {
  core::SolveRequest req;
  req.solver = core::Solver::lu_ir;
  req.matrix = "gre_216a";
  req.tol = 1e-300;  // unreachable: only the budget can stop refinement
  req.budget_ticks = 2;
  const auto row =
      core::run_lu_ir_experiment(matrices::suite_matrix(req.matrix), req);
  int deadlines = 0;
  for (const auto& c : row.cells) {
    EXPECT_NE(c.rep.status, la::SolveStatus::converged) << c.format;
    EXPECT_NE(c.rep.status, la::SolveStatus::max_iterations) << c.format;
    if (c.rep.status == la::SolveStatus::deadline_exceeded) {
      ++deadlines;
      EXPECT_LE(c.rep.iterations, 2) << c.format;
    }
  }
  EXPECT_GT(deadlines, 0);
}

TEST(Budget, GmresIrBothLegsHonorTheBudget) {
  core::SolveRequest req;
  req.solver = core::Solver::gmres_ir;
  req.matrix = "gre_216a";
  req.tol = 1e-300;
  req.budget_ticks = 2;
  const auto row =
      core::run_gmres_ir_experiment(matrices::suite_matrix(req.matrix), req);
  int deadlines = 0;
  for (const auto& c : row.cells) {
    EXPECT_NE(c.lu.status, la::SolveStatus::converged) << c.format;
    EXPECT_NE(c.gmres.status, la::SolveStatus::converged) << c.format;
    if (c.lu.status == la::SolveStatus::deadline_exceeded) ++deadlines;
    if (c.gmres.status == la::SolveStatus::deadline_exceeded) ++deadlines;
  }
  EXPECT_GT(deadlines, 0);
}

// The tentpole determinism contract: a budget-exceeded response is a normal
// deterministic response — byte-identical whatever the engine's thread count.
TEST(Budget, ResponsesAreByteIdenticalAcrossThreadCounts) {
  const std::string script =
      R"({"schema":"pstab-serve-v1","op":"solve","id":1,"solver":"cg","matrix":"bcsstk22","budget":3,"history":true}
{"schema":"pstab-serve-v1","op":"solve","id":2,"solver":"chol","matrix":"bcsstk01","budget":2}
)";
  serve::EngineOptions one, eight;
  one.threads = 1;
  eight.threads = 8;
  serve::Engine e1(one), e8(eight);
  const auto r1 = e1.run_script(script);
  const auto r8 = e8.run_script(script);
  ASSERT_EQ(r1.size(), 2u);
  ASSERT_EQ(r1, r8);  // bytes, not just verdicts
  EXPECT_NE(r1[0].find("deadline_exceeded"), std::string::npos) << r1[0];
  EXPECT_NE(r1[1].find("deadline_exceeded"), std::string::npos) << r1[1];
  // Exhausted-budget rows are deterministic, so they do count as solved work
  // in the stats, under the dedicated counter.
  EXPECT_GE(e1.stats().budget_exceeded, 2u);
}

// ---------------------------------------------------------------------------
// Admission control: caps, bounded queue, draining.

core::SolveResponse submit_sync(serve::Engine& eng,
                                const core::SolveRequest& req) {
  std::promise<core::SolveResponse> p;
  auto f = p.get_future();
  eng.submit(req, [&p](const core::SolveResponse& r) { p.set_value(r); });
  return f.get();
}

TEST(Admission, MatrixCapsRejectSynchronouslyAndDeterministically) {
  serve::EngineOptions opt;
  opt.max_n = 50;  // bcsstk01 (n=48) passes, bcsstk02 (n=66) does not
  serve::Engine eng(opt);
  core::SolveRequest big;
  big.id = 7;
  big.matrix = "bcsstk02";
  const auto r1 = submit_sync(eng, big);
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.error, "rejected: matrix 'bcsstk02' has n=66, above the cap of 50");
  EXPECT_EQ(r1.id, 7u);

  core::SolveRequest ok;
  ok.matrix = "bcsstk01";
  EXPECT_TRUE(submit_sync(eng, ok).ok);

  const auto st = eng.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.errors, 1u);
  EXPECT_EQ(st.solved, 1u);
}

TEST(Admission, BudgetCapRequiresAndBoundsTheBudget) {
  serve::EngineOptions opt;
  opt.max_budget_ticks = 5;
  serve::Engine eng(opt);
  core::SolveRequest req;
  req.matrix = "bcsstk01";
  const auto none = submit_sync(eng, req);
  EXPECT_FALSE(none.ok);
  EXPECT_NE(none.error.find("requires a budget"), std::string::npos)
      << none.error;
  req.budget_ticks = 9;
  const auto over = submit_sync(eng, req);
  EXPECT_FALSE(over.ok);
  EXPECT_EQ(over.error,
            "rejected: budget 9 exceeds the per-request cap of 5 ticks");
  req.budget_ticks = 5;
  EXPECT_TRUE(submit_sync(eng, req).ok);
}

TEST(Admission, BoundedQueueShedsLoadWithoutLosingTheAdmitted) {
  serve::EngineOptions opt;
  opt.threads = 1;
  opt.max_queue = 1;
  opt.coalesce = false;
  serve::Engine eng(opt);
  core::SolveRequest slow;
  slow.matrix = "bcsstk22";  // big enough that it cannot finish between the
                             // two submit() calls below
  std::promise<core::SolveResponse> first;
  eng.submit(slow, [&first](const core::SolveResponse& r) {
    first.set_value(r);
  });
  core::SolveRequest next;
  next.id = 2;
  next.matrix = "bcsstk01";
  const auto shed = submit_sync(eng, next);  // queue full: rejected NOW
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.error, "overloaded: pending queue full (limit 1)");
  EXPECT_TRUE(first.get_future().get().ok);  // the admitted one completes
  eng.drain();
  EXPECT_TRUE(submit_sync(eng, next).ok);  // capacity returns after the burst
  EXPECT_EQ(eng.stats().overloaded, 1u);
  EXPECT_EQ(eng.stats().queue_depth, 0u);
}

TEST(Admission, DrainingIsTerminalForNewWorkOnly) {
  serve::Engine eng;
  core::SolveRequest req;
  req.matrix = "bcsstk01";
  EXPECT_TRUE(submit_sync(eng, req).ok);
  eng.begin_drain();
  EXPECT_TRUE(eng.draining());
  const auto r = submit_sync(eng, req);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "draining: engine is shutting down");
  EXPECT_GE(eng.stats().rejected, 1u);
}

TEST(Admission, ThrowingCompletionCallbackDoesNotKillTheWorker) {
  serve::EngineOptions opt;
  opt.threads = 1;
  serve::Engine eng(opt);
  core::SolveRequest req;
  req.matrix = "bcsstk01";
  eng.submit(req, [](const core::SolveResponse&) {
    throw std::runtime_error("hostile callback");
  });
  eng.drain();
  // The single pool thread survived and still serves.
  EXPECT_TRUE(submit_sync(eng, req).ok);
}

// ---------------------------------------------------------------------------
// Watchdog: a stuck solve becomes a structured error; the pool keeps serving.

TEST(Watchdog, ConvertsAStuckSolveIntoADetectedError) {
  serve::EngineOptions opt;
  opt.threads = 1;
  opt.watchdog_ms = 50;
  serve::Engine eng(opt);
  core::SolveRequest stuck;
  stuck.matrix = "bcsstk22";
  stuck.tol = 1e-300;        // unreachable
  stuck.max_iter = 2000000000;  // effectively forever without the watchdog
  const auto r = submit_sync(eng, stuck);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "detected: solve cancelled by the hang watchdog");
  EXPECT_GE(eng.stats().watchdog_trips, 1u);
  // The worker observed the token cooperatively; it still serves.
  core::SolveRequest fine;
  fine.matrix = "bcsstk01";
  EXPECT_TRUE(submit_sync(eng, fine).ok);
}

// ---------------------------------------------------------------------------
// Stream containment: a dying writer ends the connection, not the engine.

TEST(Stream, WriteFailureEndsTheConnectionAsWriteError) {
  serve::Engine eng;
  serve::Request q;
  q.op = serve::Op::solve;
  q.solve.id = 1;
  q.solve.matrix = "bcsstk01";
  std::string in_bytes;
  serve::append_frame(in_bytes, serve::request_to_json(q));
  std::FILE* in = ::fmemopen(const_cast<char*>(in_bytes.data()),
                             in_bytes.size(), "rb");
  char tiny[16];  // no response frame fits: the first write must fail
  std::FILE* out = ::fmemopen(tiny, sizeof tiny, "wb");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(eng.serve_stream(in, out), serve::Engine::StreamEnd::write_error);
  std::fclose(in);
  std::fclose(out);
  // Containment: the engine itself is fine afterwards.
  EXPECT_TRUE(submit_sync(eng, q.solve).ok);
}

TEST(Stream, StatsOpReportsTheRobustnessCounters) {
  serve::Engine eng;
  const auto out = eng.run_script(
      R"({"schema":"pstab-serve-v1","op":"solve","id":1,"solver":"cg","matrix":"bcsstk01","budget":1}
{"schema":"pstab-serve-v1","op":"stats","id":2}
)");
  ASSERT_EQ(out.size(), 2u);
  const std::string& stats = out[1];
  for (const char* key :
       {"\"queue_depth\":", "\"rejected\":", "\"overloaded\":",
        "\"watchdog_trips\":", "\"budget_exceeded\":"})
    EXPECT_NE(stats.find(key), std::string::npos) << key << " in " << stats;
  EXPECT_NE(stats.find("\"budget_exceeded\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_depth\":0"), std::string::npos) << stats;
}

// ---------------------------------------------------------------------------
// TCP: one client dying mid-conversation must not poison the next client.

void tcp_client(int port, const std::string& bytes, bool read_reply,
                std::string* reply) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(w, 0);
    off += std::size_t(w);
  }
  if (read_reply) {
    std::FILE* in = ::fdopen(::dup(fd), "rb");
    ASSERT_NE(in, nullptr);
    std::string payload, err;
    ASSERT_EQ(serve::read_frame(in, payload, serve::kDefaultMaxFrame, err),
              serve::FrameRead::ok)
        << err;
    if (reply) *reply = payload;
    std::fclose(in);
  }
  ::close(fd);  // without read_reply this is the mid-response disconnect
}

TEST(Tcp, ClientDeathIsContainedToItsConnection) {
  serve::Engine eng;
  int port = 0;
  std::string err;
  std::atomic<bool> listener_ok{false};
  std::thread listener([&] {
    listener_ok = eng.serve_tcp(0, /*once=*/false, err, &port);
  });
  // serve_tcp publishes the bound port before the first accept.
  for (int i = 0; i < 2000 && port == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_NE(port, 0);

  serve::Request q;
  q.op = serve::Op::solve;
  q.solve.id = 1;
  q.solve.matrix = "bcsstk01";
  std::string solve_bytes;
  serve::append_frame(solve_bytes, serve::request_to_json(q));

  // Client 1 sends a solve and vanishes without reading: the engine's
  // response write hits EPIPE, which must cost exactly that connection.
  tcp_client(port, solve_bytes, /*read_reply=*/false, nullptr);

  // Client 2 gets a full, correct conversation afterwards.
  std::string reply;
  tcp_client(port, solve_bytes, /*read_reply=*/true, &reply);
  EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;

  serve::Request bye;
  bye.op = serve::Op::shutdown;
  bye.solve.id = 9;
  std::string bye_bytes;
  serve::append_frame(bye_bytes, serve::request_to_json(bye));
  tcp_client(port, bye_bytes, /*read_reply=*/false, nullptr);
  listener.join();
  EXPECT_TRUE(listener_ok);
}

// ---------------------------------------------------------------------------
// Chaos harness: clean run, and the digest is reproducible (the contract the
// fuzz serve_chaos surface replays).

TEST(Chaos, EverySessionSurvivesAndTheDigestIsStable) {
  serve::ChaosOptions opt;
  opt.seed = 7;
  opt.sessions = 8;  // one full pass over the scenario repertoire
  const auto a = serve::run_chaos(opt);
  EXPECT_TRUE(a.ok()) << a.first_failure;
  EXPECT_EQ(a.sessions, 8);
  EXPECT_GT(a.compared, 0);
  const auto b = serve::run_chaos(opt);
  EXPECT_TRUE(b.ok()) << b.first_failure;
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.responses, b.responses);
}

}  // namespace
