// Exhaustive 8-bit validation of the batched kernels against the GMP
// oracle (mp/oracle.hpp): every nonzero, non-NaR pair (a, b) runs through a
// two-step batched dot — mul-round then add-round, the paper's §II-C
// per-operation rounding contract — and must match both the scalar kernels
// and an independently decoded, correctly rounded ground truth.  Long
// chained dots then pin the batched chain and the chunked-quire fused dot
// against an exact 512-bit accumulation rounded once.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "la/kernels/kernels.hpp"
#include "mp/oracle.hpp"
#include "mp/mpreal.hpp"
#include "posit/posit.hpp"
#include "posit/quire.hpp"

namespace {

using namespace pstab;
namespace ker = pstab::la::kernels;

const ker::Context kScalar{ker::Backend::Scalar};
const ker::Context kBatched{ker::Backend::Batched};

/// Signed value of a pattern via the oracle's independent decoder (the
/// library decoder never touches this path).
template <int N, int ES>
mpf_class oracle_value(Posit<N, ES> p) {
  if (p.is_zero()) return mp::make(0.0);
  const bool neg = (p.bits() >> (N - 1)) & 1;
  const std::uint64_t mag = neg ? (-p).bits() : p.bits();
  const mpf_class v = mp::oracle_decode(mag, N, ES);
  return neg ? mpf_class(-v) : v;
}

/// All 8-bit pairs: dot([a], [b]) is one mul-round (the add against the zero
/// seed is exact), so scalar, batched, and oracle_round(exact product) must
/// agree pattern-for-pattern.
template <int ES>
void all_pairs_dot() {
  using P = Posit<8, ES>;
  for (unsigned ab = 0; ab < 256; ++ab) {
    const P a = P::from_bits(ab);
    if (a.is_nar() || a.is_zero()) continue;
    const mpf_class va = oracle_value(a);
    for (unsigned bb = 0; bb < 256; ++bb) {
      const P b = P::from_bits(bb);
      if (b.is_nar() || b.is_zero()) continue;
      const la::Vec<P> x{a}, y{b};
      const P ds = ker::dot(kScalar, x, y);
      const P db = ker::dot(kBatched, x, y);
      ASSERT_EQ(ds.bits(), db.bits())
          << "a=" << ab << " b=" << bb << " es=" << ES;
      const mpf_class exact = va * oracle_value(b);
      const P ref = mp::oracle_round<8, ES>(exact);
      ASSERT_EQ(db.bits(), ref.bits())
          << "a=" << ab << " b=" << bb << " es=" << ES;
    }
  }
}

TEST(KernelsExhaustive, AllPairsDotPosit8es0) { all_pairs_dot<0>(); }
TEST(KernelsExhaustive, AllPairsDotPosit8es2) { all_pairs_dot<2>(); }

/// Long chains: the batched chained dot must match the scalar chain bit for
/// bit, and the fused (chunked-quire) dot must equal the exact sum of
/// products rounded exactly once — independent of how the chunks split.
TEST(KernelsExhaustive, ChainedAndFusedDotVsExactSum) {
  using P = Posit<8, 2>;
  std::mt19937_64 rng(41);
  for (int rep = 0; rep < 64; ++rep) {
    const int n = 1 + int(rng() % 4096);
    la::Vec<P> x(n), y(n);
    mpf_class exact = mp::make(0.0);
    for (int i = 0; i < n; ++i) {
      // Nonzero, non-NaR patterns only: specials are covered elsewhere and
      // would poison the exact accumulation.
      do {
        x[i] = P::from_bits(rng() & 0xff);
      } while (x[i].is_nar() || x[i].is_zero());
      do {
        y[i] = P::from_bits(rng() & 0xff);
      } while (y[i].is_nar() || y[i].is_zero());
      exact += oracle_value(x[i]) * oracle_value(y[i]);
    }
    const P ds = ker::dot(kScalar, x, y);
    const P db = ker::dot(kBatched, x, y);
    ASSERT_EQ(ds.bits(), db.bits()) << "rep=" << rep << " n=" << n;

    const P fs = ker::dot_fused(kScalar, x, y);
    const P fb = ker::dot_fused(kBatched, x, y);
    ASSERT_EQ(fs.bits(), fb.bits()) << "rep=" << rep << " n=" << n;
    const P ref =
        exact == 0 ? P::zero() : mp::oracle_round<8, 2>(exact);
    ASSERT_EQ(fb.bits(), ref.bits()) << "rep=" << rep << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Backend::Simd exhaustive tier: every ISA the runner can execute is pinned
// against the scalar core — all-pairs 8-bit dot/axpy through the dispatch
// layer, full 16-bit decode/encode/mul_round pattern sweeps through the
// per-ISA kernel tables, and long mixed-special chains for both supported
// formats.  Bit-identity is the contract; any mismatch is a hard failure.

namespace simd = pstab::la::kernels::simd;
using pstab::detail::u64;
const ker::Context kSimd{ker::Backend::Simd};

class ForcedIsa {
 public:
  explicit ForcedIsa(simd::Isa i) : honored_(simd::force_isa(i)) {}
  ~ForcedIsa() { simd::clear_forced_isa(); }
  [[nodiscard]] bool honored() const { return honored_; }

 private:
  bool honored_;
};

std::vector<simd::Isa> vector_isas() {
  std::vector<simd::Isa> v;
  for (const simd::Isa i :
       {simd::Isa::kAvx2, simd::Isa::kAvx512, simd::Isa::kNeon})
    if (simd::available(i)) v.push_back(i);
  return v;
}

/// All 8-bit pairs (specials included) through the public dispatch layer:
/// Backend::Simd must match Backend::Scalar bit for bit whatever the active
/// ISA — 8-bit formats have no vector kernel, so this pins the degradation
/// path; the vector code itself is swept by the 16-bit tests below.
template <int ES>
void simd_all_pairs() {
  using P = Posit<8, ES>;
  const la::Vec<P> ypats = {P::from_bits(0x01), P::from_bits(0xC0),
                            P::from_bits(0x80), P::zero()};
  for (unsigned ab = 0; ab < 256; ++ab) {
    const P a = P::from_bits(ab);
    for (unsigned bb = 0; bb < 256; ++bb) {
      const P b = P::from_bits(bb);
      const la::Vec<P> x{a}, y{b};
      const P ds = ker::dot(kScalar, x, y);
      const P dv = ker::dot(kSimd, x, y);
      ASSERT_EQ(ds.bits(), dv.bits())
          << "dot a=" << ab << " b=" << bb << " es=" << ES;
      for (const P& yy : ypats) {
        la::Vec<P> us{yy}, uv{yy};
        ker::axpy(kScalar, a, x, us);
        ker::axpy(kSimd, a, x, uv);
        ASSERT_EQ(us[0].bits(), uv[0].bits())
            << "axpy alpha=" << ab << " x=" << bb << " es=" << ES;
      }
    }
  }
}

TEST(SimdExhaustive, AllPairsDotAxpyPosit8PerIsa) {
  auto isas = vector_isas();
  for (const simd::Isa isa : isas) {
    ForcedIsa f(isa);
    ASSERT_TRUE(f.honored());
    SCOPED_TRACE(simd::isa_name(isa));
    simd_all_pairs<0>();
    simd_all_pairs<2>();
  }
  {
    // And with the kill switch on: Simd context, scalar path.
    ForcedIsa f(simd::Isa::kScalar);
    simd_all_pairs<2>();
  }
}

/// Full 16-bit pattern space through one ISA's kernel table hooks:
/// decode_f64 must produce the exact scalar value (+0.0 for zero, NaN for
/// NaR), encode_f64 must round-trip every decoded value, and mul_round must
/// match the scalar product for every pattern against a partner spread.
void sweep_p16(const simd::IsaTables& t) {
  using P = Posit<16, 1>;
  constexpr int kAll = 1 << 16;
  std::vector<P> pats(kAll);
  for (int i = 0; i < kAll; ++i) pats[i] = P::from_bits(unsigned(i));
  std::vector<double> dec(kAll);
  t.p16.decode_f64(pats.data(), pats.size(), dec.data());
  std::vector<P> back(kAll);
  t.p16.encode_f64(dec.data(), dec.size(), back.data());
  for (int i = 0; i < kAll; ++i) {
    const P p = pats[i];
    if (p.is_nar()) {
      ASSERT_TRUE(std::isnan(dec[i])) << "pattern " << i;
    } else {
      // Every finite Posit<16,1> is exact in double, so to_double IS the
      // scalar-core decode; bitwise compare kills -0.0 leaks too.
      const double want = p.to_double();
      ASSERT_EQ(std::memcmp(&dec[i], &want, sizeof want), 0)
          << "pattern " << i << " decode " << dec[i] << " want " << want;
    }
    ASSERT_EQ(back[i].bits(), p.bits()) << "roundtrip pattern " << i;
  }

  // mul_round: all patterns x a partner spread covering both taper ends,
  // the golden zone, NaR and zero.
  const unsigned partners[] = {0x0001, 0x0002, 0x1000, 0x3000, 0x4000,
                               0x5678, 0x7FFF, 0x8000, 0x8001, 0xC000,
                               0xE222, 0xFFFF, 0x0000};
  std::vector<P> b(kAll), prod(kAll);
  for (const unsigned pb : partners) {
    std::fill(b.begin(), b.end(), P::from_bits(pb));
    t.p16.mul_round(pats.data(), b.data(), prod.data(), pats.size());
    for (int i = 0; i < kAll; ++i) {
      const P want = pats[i] * P::from_bits(pb);
      ASSERT_EQ(prod[i].bits(), want.bits())
          << "mul a=" << i << " b=" << pb;
    }
  }
}

TEST(SimdExhaustive, Posit16FullPatternSweepPerIsa) {
  for (const simd::Isa isa : vector_isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    const simd::IsaTables* t = simd::tables_for(isa);
    ASSERT_NE(t, nullptr);
    sweep_p16(*t);
  }
}

/// Long chained dots and strided update-chains with specials mixed in, for
/// both vector formats on every ISA — the band-exit, taper-absorption and
/// NaR paths of the FP chain all fire at these lengths.
template <class P>
void simd_long_chains(unsigned seed) {
  std::mt19937_64 rng(seed);
  for (int rep = 0; rep < 48; ++rep) {
    const int n = 1 + int(rng() % 4096);
    la::Vec<P> x(n), y(n);
    for (int i = 0; i < n; ++i) {
      x[i] = P::from_bits(rng() & ((u64(1) << P::nbits) - 1));
      y[i] = P::from_bits(rng() & ((u64(1) << P::nbits) - 1));
      if (rng() % 97 == 0) x[i] = P::nar();
      if (rng() % 131 == 0) y[i] = P::zero();
    }
    const P ds = ker::dot(kScalar, x, y);
    const P dv = ker::dot(kSimd, x, y);
    ASSERT_EQ(ds.bits(), dv.bits()) << "rep=" << rep << " n=" << n;

    const P seedv = P::from_bits(rng() & ((u64(1) << P::nbits) - 1));
    for (const bool sub : {false, true}) {
      const P cs = ker::update_chain(kScalar, seedv, x.data(), 1, y.data(), 1,
                                     std::size_t(n), sub);
      const P cv = ker::update_chain(kSimd, seedv, x.data(), 1, y.data(), 1,
                                     std::size_t(n), sub);
      ASSERT_EQ(cs.bits(), cv.bits()) << "rep=" << rep << " n=" << n;
    }
  }
}

TEST(SimdExhaustive, LongChainsPerIsa) {
  for (const simd::Isa isa : vector_isas()) {
    ForcedIsa f(isa);
    ASSERT_TRUE(f.honored());
    SCOPED_TRACE(simd::isa_name(isa));
    simd_long_chains<Posit<16, 1>>(0xA11CE);
    simd_long_chains<Posit<32, 2>>(0xB0B);
  }
}

}  // namespace
