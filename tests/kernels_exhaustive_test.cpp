// Exhaustive 8-bit validation of the batched kernels against the GMP
// oracle (mp/oracle.hpp): every nonzero, non-NaR pair (a, b) runs through a
// two-step batched dot — mul-round then add-round, the paper's §II-C
// per-operation rounding contract — and must match both the scalar kernels
// and an independently decoded, correctly rounded ground truth.  Long
// chained dots then pin the batched chain and the chunked-quire fused dot
// against an exact 512-bit accumulation rounded once.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "la/kernels/kernels.hpp"
#include "mp/oracle.hpp"
#include "mp/mpreal.hpp"
#include "posit/posit.hpp"
#include "posit/quire.hpp"

namespace {

using namespace pstab;
namespace ker = pstab::la::kernels;

const ker::Context kScalar{ker::Backend::Scalar};
const ker::Context kBatched{ker::Backend::Batched};

/// Signed value of a pattern via the oracle's independent decoder (the
/// library decoder never touches this path).
template <int N, int ES>
mpf_class oracle_value(Posit<N, ES> p) {
  if (p.is_zero()) return mp::make(0.0);
  const bool neg = (p.bits() >> (N - 1)) & 1;
  const std::uint64_t mag = neg ? (-p).bits() : p.bits();
  const mpf_class v = mp::oracle_decode(mag, N, ES);
  return neg ? mpf_class(-v) : v;
}

/// All 8-bit pairs: dot([a], [b]) is one mul-round (the add against the zero
/// seed is exact), so scalar, batched, and oracle_round(exact product) must
/// agree pattern-for-pattern.
template <int ES>
void all_pairs_dot() {
  using P = Posit<8, ES>;
  for (unsigned ab = 0; ab < 256; ++ab) {
    const P a = P::from_bits(ab);
    if (a.is_nar() || a.is_zero()) continue;
    const mpf_class va = oracle_value(a);
    for (unsigned bb = 0; bb < 256; ++bb) {
      const P b = P::from_bits(bb);
      if (b.is_nar() || b.is_zero()) continue;
      const la::Vec<P> x{a}, y{b};
      const P ds = ker::dot(kScalar, x, y);
      const P db = ker::dot(kBatched, x, y);
      ASSERT_EQ(ds.bits(), db.bits())
          << "a=" << ab << " b=" << bb << " es=" << ES;
      const mpf_class exact = va * oracle_value(b);
      const P ref = mp::oracle_round<8, ES>(exact);
      ASSERT_EQ(db.bits(), ref.bits())
          << "a=" << ab << " b=" << bb << " es=" << ES;
    }
  }
}

TEST(KernelsExhaustive, AllPairsDotPosit8es0) { all_pairs_dot<0>(); }
TEST(KernelsExhaustive, AllPairsDotPosit8es2) { all_pairs_dot<2>(); }

/// Long chains: the batched chained dot must match the scalar chain bit for
/// bit, and the fused (chunked-quire) dot must equal the exact sum of
/// products rounded exactly once — independent of how the chunks split.
TEST(KernelsExhaustive, ChainedAndFusedDotVsExactSum) {
  using P = Posit<8, 2>;
  std::mt19937_64 rng(41);
  for (int rep = 0; rep < 64; ++rep) {
    const int n = 1 + int(rng() % 4096);
    la::Vec<P> x(n), y(n);
    mpf_class exact = mp::make(0.0);
    for (int i = 0; i < n; ++i) {
      // Nonzero, non-NaR patterns only: specials are covered elsewhere and
      // would poison the exact accumulation.
      do {
        x[i] = P::from_bits(rng() & 0xff);
      } while (x[i].is_nar() || x[i].is_zero());
      do {
        y[i] = P::from_bits(rng() & 0xff);
      } while (y[i].is_nar() || y[i].is_zero());
      exact += oracle_value(x[i]) * oracle_value(y[i]);
    }
    const P ds = ker::dot(kScalar, x, y);
    const P db = ker::dot(kBatched, x, y);
    ASSERT_EQ(ds.bits(), db.bits()) << "rep=" << rep << " n=" << n;

    const P fs = ker::dot_fused(kScalar, x, y);
    const P fb = ker::dot_fused(kBatched, x, y);
    ASSERT_EQ(fs.bits(), fb.bits()) << "rep=" << rep << " n=" << n;
    const P ref =
        exact == 0 ? P::zero() : mp::oracle_round<8, 2>(exact);
    ASSERT_EQ(fb.bits(), ref.bits()) << "rep=" << rep << " n=" << n;
  }
}

}  // namespace
