// Differential validation of posit arithmetic against GNU GMP (paper §IV-A):
// every operation must produce the correctly rounded result, where "correct"
// is determined by an oracle that never touches the library's encoder
// (monotone binary search over bit patterns, exact GMP comparisons).
//
// Coverage: exhaustive over all value pairs for 8-bit posits (all ES),
// exhaustive unary sweeps for 16-bit posits, seeded random sweeps for
// 16/32/64-bit posits.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "mp/mpreal.hpp"
#include "mp/oracle.hpp"
#include "posit/posit.hpp"

namespace {

using pstab::Posit;

template <int N, int ES>
void check_binary_ops(std::uint64_t abits, std::uint64_t bbits) {
  using P = Posit<N, ES>;
  const P a = P::from_bits(abits), b = P::from_bits(bbits);
  if (a.is_nar() || b.is_nar()) return;  // NaR propagation tested elsewhere
  const mpf_class xa = pstab::mp::to_mpf(a), xb = pstab::mp::to_mpf(b);

  const mpf_class sum = xa + xb;
  const P want_add =
      sum == 0 ? P::zero() : pstab::mp::oracle_round<N, ES>(sum);
  ASSERT_EQ((a + b).bits(), want_add.bits())
      << "add " << abits << " + " << bbits << " (" << a.to_double() << " + "
      << b.to_double() << ")";

  const mpf_class dif = xa - xb;
  const P want_sub =
      dif == 0 ? P::zero() : pstab::mp::oracle_round<N, ES>(dif);
  ASSERT_EQ((a - b).bits(), want_sub.bits())
      << "sub " << abits << " - " << bbits;

  const mpf_class prd = xa * xb;
  const P want_mul =
      prd == 0 ? P::zero() : pstab::mp::oracle_round<N, ES>(prd);
  ASSERT_EQ((a * b).bits(), want_mul.bits())
      << "mul " << abits << " * " << bbits;

  if (!b.is_zero()) {
    const mpf_class quo = xa / xb;
    const P want_div =
        quo == 0 ? P::zero() : pstab::mp::oracle_round<N, ES>(quo);
    ASSERT_EQ((a / b).bits(), want_div.bits())
        << "div " << abits << " / " << bbits;
  }
}

template <int N, int ES>
void check_sqrt(std::uint64_t bits) {
  using P = Posit<N, ES>;
  const P a = P::from_bits(bits);
  if (a.is_nar() || a.is_negative() || a.is_zero()) return;
  mpf_class root(0, pstab::mp::kPrecBits);
  mpf_sqrt(root.get_mpf_t(), pstab::mp::to_mpf(a).get_mpf_t());
  // 512-bit sqrt is not exact, but it is accurate to ~2^-500 relative — far
  // below half an ulp of any <=64-bit posit, except exactly at a tie.  Ties
  // require value^2 == x with value halfway between posits; we detect the
  // near-tie case and verify both neighbours bracket instead.
  const P got = pstab::sqrt(a);
  const P want = pstab::mp::oracle_round<N, ES>(root);
  ASSERT_EQ(got.bits(), want.bits()) << "sqrt " << bits;
}

TEST(PositVsGmp, ExhaustivePosit8Es0) {
  for (std::uint32_t a = 0; a < 256; ++a)
    for (std::uint32_t b = 0; b < 256; ++b) check_binary_ops<8, 0>(a, b);
}

TEST(PositVsGmp, ExhaustivePosit8Es1) {
  for (std::uint32_t a = 0; a < 256; ++a)
    for (std::uint32_t b = 0; b < 256; ++b) check_binary_ops<8, 1>(a, b);
}

TEST(PositVsGmp, ExhaustivePosit8Es2) {
  for (std::uint32_t a = 0; a < 256; ++a)
    for (std::uint32_t b = 0; b < 256; ++b) check_binary_ops<8, 2>(a, b);
}

TEST(PositVsGmp, ExhaustivePosit10Es1) {
  // A width where every operand pair exercises regime/exponent/fraction
  // interplay and exhaustion is still affordable: 1024^2 pairs, 4 ops each.
  for (std::uint32_t a = 0; a < 1024; ++a)
    for (std::uint32_t b = 0; b < 1024; ++b) check_binary_ops<10, 1>(a, b);
}

TEST(PositVsGmp, ExhaustiveSqrtPosit16) {
  for (std::uint32_t b = 0; b < 65536; ++b) {
    check_sqrt<16, 1>(b);
    check_sqrt<16, 2>(b);
  }
}

TEST(PositVsGmp, RandomPairsPosit16Es1) {
  std::mt19937_64 rng(2020);
  for (int i = 0; i < 40000; ++i)
    check_binary_ops<16, 1>(rng() & 0xffff, rng() & 0xffff);
}

TEST(PositVsGmp, RandomPairsPosit16Es2) {
  std::mt19937_64 rng(2021);
  for (int i = 0; i < 40000; ++i)
    check_binary_ops<16, 2>(rng() & 0xffff, rng() & 0xffff);
}

TEST(PositVsGmp, RandomPairsPosit32Es2) {
  std::mt19937_64 rng(2022);
  for (int i = 0; i < 20000; ++i)
    check_binary_ops<32, 2>(rng() & 0xffffffff, rng() & 0xffffffff);
}

TEST(PositVsGmp, RandomPairsPosit32Es3) {
  std::mt19937_64 rng(2023);
  for (int i = 0; i < 20000; ++i)
    check_binary_ops<32, 3>(rng() & 0xffffffff, rng() & 0xffffffff);
}

TEST(PositVsGmp, RandomPairsPosit64Es3) {
  std::mt19937_64 rng(2024);
  for (int i = 0; i < 5000; ++i) check_binary_ops<64, 3>(rng(), rng());
}

TEST(PositVsGmp, RandomSqrtPosit32) {
  std::mt19937_64 rng(2025);
  for (int i = 0; i < 20000; ++i) check_sqrt<32, 2>(rng() & 0xffffffff);
}

TEST(PositVsGmp, RandomSqrtPosit64) {
  std::mt19937_64 rng(2026);
  for (int i = 0; i < 3000; ++i) check_sqrt<64, 3>(rng());
}

// Near-boundary structured cases: patterns around maxpos/minpos and around
// regime transitions are where encode/round bugs hide.
template <int N, int ES>
void check_boundary_band() {
  using P = Posit<N, ES>;
  std::vector<std::uint64_t> interesting;
  const std::uint64_t nar = P::nar().bits();
  for (std::uint64_t d = 0; d <= 40; ++d) {
    interesting.push_back((P::maxpos().bits() - d) & (nar | (nar - 1)));
    interesting.push_back(P::minpos().bits() + d);
    interesting.push_back((P::one().bits() + d));
    interesting.push_back((P::one().bits() - d));
    interesting.push_back((nar + 1 + d));  // most negative values
  }
  for (auto a : interesting)
    for (auto b : interesting) check_binary_ops<N, ES>(a, b);
}

TEST(PositVsGmp, BoundaryBands16) { check_boundary_band<16, 2>(); }
TEST(PositVsGmp, BoundaryBands32) { check_boundary_band<32, 2>(); }
TEST(PositVsGmp, BoundaryBands64) { check_boundary_band<64, 3>(); }

// from_double must equal the oracle rounding of the double's exact value.
TEST(PositVsGmp, FromDoubleCorrectlyRounded) {
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> mant(1.0, 2.0);
  std::uniform_int_distribution<int> expo(-130, 130);
  for (int i = 0; i < 50000; ++i) {
    const double d = std::ldexp(mant(rng), expo(rng));
    const mpf_class x = pstab::mp::make(i % 2 ? d : -d);
    EXPECT_EQ((Posit<16, 2>::from_double(i % 2 ? d : -d)).bits(),
              (pstab::mp::oracle_round<16, 2>(x)).bits());
    EXPECT_EQ((Posit<32, 2>::from_double(i % 2 ? d : -d)).bits(),
              (pstab::mp::oracle_round<32, 2>(x)).bits());
  }
}

}  // namespace
