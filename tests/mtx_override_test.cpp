// Integration test of the PSTAB_MTX_DIR override path: when a real .mtx
// file for a suite matrix exists, it is loaded instead of the synthetic
// stand-in.  Must run in its own process (the suite cache is per-process),
// which this dedicated binary guarantees.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "matrices/mm_io.hpp"
#include "matrices/suite.hpp"

namespace {

using namespace pstab;

TEST(MtxOverride, LoadsFileInsteadOfSynthetic) {
  // Write a tiny SPD "lund_b.mtx" (nothing like the real one) to a temp dir.
  const std::string dir = ::testing::TempDir();
  {
    std::ofstream f(dir + "/lund_b.mtx");
    f << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "3 3 4\n"
      << "1 1 4.0\n2 2 5.0\n3 3 6.0\n2 1 1.0\n";
  }
  ASSERT_EQ(setenv("PSTAB_MTX_DIR", dir.c_str(), 1), 0);

  const auto& g = matrices::suite_matrix("lund_b");
  EXPECT_EQ(g.n, 3);             // the file's size, not the spec's 147
  EXPECT_EQ(g.csr.nnz(), 5u);    // symmetric expansion: 3 diag + 2 offdiag
  EXPECT_EQ(g.dense(0, 0), 4.0);
  EXPECT_EQ(g.dense(1, 0), 1.0);
  EXPECT_EQ(g.dense(0, 1), 1.0);

  // Matrices without a file still come from the generator at spec size.
  const auto& synth = matrices::suite_matrix("bcsstk01");
  EXPECT_EQ(synth.n, 48);
  unsetenv("PSTAB_MTX_DIR");
}

}  // namespace
