// Backend-equivalence suite for la::kernels: the batched decoded-plane
// kernels must be bit-identical to the scalar loops on every input —
// random data, specials (NaR / zero / ±maxpos / ±minpos, IEEE inf/NaN),
// degenerate and odd sizes — and the dispatch predicate itself must route
// exactly as documented (Auto thresholds, default-backend kill switch,
// telemetry fallback).  Solver-level identity (CG, Cholesky) and the
// thread-count determinism of batched artifacts close the loop.
// (The all-pairs 8-bit sweep against the GMP oracle is
// kernels_exhaustive_test.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/report_json.hpp"
#include "core/telemetry/telemetry.hpp"
#include "ieee/softfloat.hpp"
#include "la/cg.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/kernels/kernels.hpp"
#include "matrices/generator.hpp"
#include "matrices/suite.hpp"
#include "posit/lut.hpp"
#include "posit/posit.hpp"

namespace {

using namespace pstab;
namespace ker = pstab::la::kernels;

const ker::Context kScalar{ker::Backend::Scalar};
const ker::Context kBatched{ker::Backend::Batched};

template <class T>
bool bits_equal(const la::Vec<T>& a, const la::Vec<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

template <class T>
bool bits_equal(const T& a, const T& b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

/// Random vector; when `specials` is set roughly one element in eight is a
/// special value (posit NaR / zero / ±maxpos / ±minpos, IEEE ±inf / NaN /
/// zero) so the flag paths and propagation rules get exercised.
template <class T>
la::Vec<T> rand_vec(int n, unsigned seed, bool specials) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  la::Vec<T> v(n);
  for (auto& x : v) x = scalar_traits<T>::from_double(dist(rng));
  if (!specials) return v;
  std::vector<T> s;
  if constexpr (requires { T::nar(); }) {
    s = {T::zero(),   T::nar(),     T::maxpos(),
         -T::maxpos(), T::minpos(), -T::minpos()};
  } else {
    const double inf = std::numeric_limits<double>::infinity();
    s = {scalar_traits<T>::zero(), scalar_traits<T>::from_double(inf),
         scalar_traits<T>::from_double(-inf),
         scalar_traits<T>::from_double(std::nan("")), scalar_traits<T>::max()};
  }
  for (auto& x : v)
    if (rng() % 8 == 0) x = s[rng() % s.size()];
  return v;
}

const int kSizes[] = {0, 1, 2, 3, 17, 257, 1000};

template <class T>
void check_blas1(bool specials) {
  unsigned seed = specials ? 900 : 100;
  for (const int n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n) +
                 (specials ? " specials" : " random"));
    const auto x = rand_vec<T>(n, seed++, specials);
    const auto y = rand_vec<T>(n, seed++, specials);
    const T alpha = scalar_traits<T>::from_double(1.25);
    const T beta = scalar_traits<T>::from_double(-0.75);

    EXPECT_TRUE(bits_equal(ker::dot(kScalar, x, y), ker::dot(kBatched, x, y)));
    EXPECT_TRUE(bits_equal(ker::dot_fused(kScalar, x, y),
                           ker::dot_fused(kBatched, x, y)));
    EXPECT_TRUE(
        bits_equal(ker::nrm2(kScalar, x), ker::nrm2(kBatched, x)));

    auto ys = y, yb = y;
    ker::axpy(kScalar, alpha, x, ys);
    ker::axpy(kBatched, alpha, x, yb);
    EXPECT_TRUE(bits_equal(ys, yb));

    auto xs = x, xb = x;
    ker::scal(kScalar, alpha, xs);
    ker::scal(kBatched, alpha, xb);
    EXPECT_TRUE(bits_equal(xs, xb));

    la::Vec<T> zs(n), zb(n);
    ker::xpby(kScalar, x, beta, y, zs);
    ker::xpby(kBatched, x, beta, y, zb);
    EXPECT_TRUE(bits_equal(zs, zb));

    // Strided multiply-accumulate chains, both directions.
    for (const bool sub : {false, true}) {
      const std::size_t m = n / 2;
      const T ss = ker::update_chain(kScalar, alpha, x.data(), 2, y.data(), 1,
                                     m, sub);
      const T sb = ker::update_chain(kBatched, alpha, x.data(), 2, y.data(), 1,
                                     m, sub);
      EXPECT_TRUE(bits_equal(ss, sb));
    }
  }
}

template <class T>
void check_blas2(bool specials) {
  const int rows = 37, cols = 53;
  std::mt19937_64 rng(specials ? 7000 : 77);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  la::Dense<double> Ad(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) Ad(i, j) = dist(rng);
  const auto A = Ad.template cast<T>();
  const auto x = rand_vec<T>(cols, specials ? 7001 : 78, specials);

  la::Vec<T> ys, yb;
  ker::gemv(kScalar, A, x, ys);
  ker::gemv(kBatched, A, x, yb);
  EXPECT_TRUE(bits_equal(ys, yb));

  // CSR with the x-side specials flowing through the gather.
  const matrices::MatrixSpec spec{"kerneq", 64, 640, 1e3, 1e1, 1e1};
  const auto g = matrices::generate_spd(spec, 3);
  const auto S = g.csr.template cast<T>();
  const auto xs = rand_vec<T>(64, specials ? 7002 : 79, specials);
  la::Vec<T> ss, sb;
  ker::spmv(kScalar, S, xs, ss);
  ker::spmv(kBatched, S, xs, sb);
  EXPECT_TRUE(bits_equal(ss, sb));
}

TEST(KernelsEquivalence, Posit16Blas1) {
  check_blas1<Posit16_1>(false);
  check_blas1<Posit16_1>(true);
}
TEST(KernelsEquivalence, Posit32Blas1) {
  check_blas1<Posit32_2>(false);
  check_blas1<Posit32_2>(true);
}
TEST(KernelsEquivalence, HalfBlas1) {
  check_blas1<Half>(false);
  check_blas1<Half>(true);
}
TEST(KernelsEquivalence, Posit16Blas2) {
  check_blas2<Posit16_1>(false);
  check_blas2<Posit16_1>(true);
}
TEST(KernelsEquivalence, Posit32Blas2) {
  check_blas2<Posit32_2>(false);
  check_blas2<Posit32_2>(true);
}
TEST(KernelsEquivalence, HalfBlas2) {
  check_blas2<Half>(false);
  check_blas2<Half>(true);
}

// ---------------------------------------------------------------------------
// Directed NaR propagation: a single poisoned element anywhere in the input
// must poison the reductions identically in both backends — the decoded-plane
// flag machinery may not lose, duplicate, or reorder the NaR no matter which
// lane or tail position it lands in.

template <class T>
void check_nar_propagation() {
  for (const int n : {1, 2, 7, 8, 9, 64, 257}) {
    const auto base = rand_vec<T>(n, 4242 + n, false);
    const auto y = rand_vec<T>(n, 5252 + n, false);
    for (const int pos : {0, n / 2, n - 1}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " pos=" + std::to_string(pos));
      auto x = base;
      x[pos] = T::nar();

      const T ds = ker::dot(kScalar, x, y);
      const T db = ker::dot(kBatched, x, y);
      EXPECT_TRUE(ds.is_nar());
      EXPECT_TRUE(bits_equal(ds, db));

      const T fs = ker::dot_fused(kScalar, x, y);
      const T fb = ker::dot_fused(kBatched, x, y);
      EXPECT_TRUE(fs.is_nar());
      EXPECT_TRUE(bits_equal(fs, fb));

      // Poison on the update-chain side too (the Cholesky inner loop).
      const T alpha = scalar_traits<T>::from_double(-1.5);
      const T cs =
          ker::update_chain(kScalar, alpha, x.data(), 1, y.data(), 1,
                            std::size_t(n), true);
      const T cb =
          ker::update_chain(kBatched, alpha, x.data(), 1, y.data(), 1,
                            std::size_t(n), true);
      EXPECT_TRUE(cs.is_nar());
      EXPECT_TRUE(bits_equal(cs, cb));

      // And through the elementwise updates into a full vector.
      auto as = y, ab = y;
      ker::axpy(kScalar, alpha, x, as);
      ker::axpy(kBatched, alpha, x, ab);
      EXPECT_TRUE(as[pos].is_nar());
      EXPECT_TRUE(bits_equal(as, ab));
    }
  }
}

TEST(KernelsEquivalence, NaRPropagationPosit16) {
  check_nar_propagation<Posit16_1>();
}
TEST(KernelsEquivalence, NaRPropagationPosit32) {
  check_nar_propagation<Posit32_2>();
}

TEST(KernelsEquivalence, NanPropagationHalf) {
  // IEEE twin of the NaR sweep: one quiet NaN must surface identically.
  for (const int n : {1, 8, 9, 257}) {
    const auto base = rand_vec<Half>(n, 6400 + n, false);
    const auto y = rand_vec<Half>(n, 6500 + n, false);
    for (const int pos : {0, n - 1}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " pos=" + std::to_string(pos));
      auto x = base;
      x[pos] = scalar_traits<Half>::from_double(std::nan(""));
      const Half ds = ker::dot(kScalar, x, y);
      const Half db = ker::dot(kBatched, x, y);
      EXPECT_TRUE(std::isnan(ds.to_double()));
      EXPECT_TRUE(bits_equal(ds, db));
      const Half cs = ker::update_chain(kScalar, Half(1.0), x.data(), 1,
                                        y.data(), 1, std::size_t(n), false);
      const Half cb = ker::update_chain(kBatched, Half(1.0), x.data(), 1,
                                        y.data(), 1, std::size_t(n), false);
      EXPECT_TRUE(std::isnan(cs.to_double()));
      EXPECT_TRUE(bits_equal(cs, cb));
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch routing.

TEST(KernelsDispatch, ExplicitBackendsWin) {
  EXPECT_FALSE(ker::use_batched<Posit32_2>(kScalar, 1 << 20));
  EXPECT_TRUE(ker::use_batched<Posit32_2>(kBatched, 1));
}

TEST(KernelsDispatch, AutoRespectsSizeFloor) {
  const ker::Context a{ker::Backend::Auto};
  EXPECT_FALSE(ker::use_batched<Posit32_2>(a, ker::kAutoMinN - 1));
  EXPECT_TRUE(ker::use_batched<Posit32_2>(a, ker::kAutoMinN));
}

TEST(KernelsDispatch, AutoDefersToLutPreference) {
  // Only the N <= 8 single-load result tables make the scalar path preferable
  // (the 16-bit decode-assist does not: batched still wins there).
  using P8 = Posit<8, 2>;
  const ker::Context a{ker::Backend::Auto};
  lut::enable<8, 2>();
  EXPECT_FALSE(ker::use_batched<P8>(a, 4096));        // LUT path preferred
  EXPECT_TRUE(ker::use_batched<P8>(kBatched, 4096));  // explicit wins
  lut::disable<8, 2>();
  EXPECT_TRUE(ker::use_batched<P8>(a, 4096));
}

TEST(KernelsDispatch, DefaultBackendKillSwitch) {
  // set_default_backend(Scalar) is exactly what PSTAB_KERNELS=scalar (or =0)
  // latches at startup: Auto contexts fall back, explicit contexts still win.
  const ker::Context a{ker::Backend::Auto};
  ASSERT_TRUE(ker::use_batched<Posit32_2>(a, 4096));
  ker::set_default_backend(ker::Backend::Scalar);
  EXPECT_FALSE(ker::use_batched<Posit32_2>(a, 4096));
  EXPECT_TRUE(ker::use_batched<Posit32_2>(kBatched, 4096));
  ker::set_default_backend(ker::Backend::Batched);
  EXPECT_TRUE(ker::use_batched<Posit32_2>(a, 1));  // forced, no size floor
  ker::set_default_backend(ker::Backend::Auto);
  EXPECT_TRUE(ker::use_batched<Posit32_2>(a, 4096));
}

TEST(KernelsDispatch, TelemetryForcesScalar) {
  telemetry::set_enabled(true);
  EXPECT_FALSE(ker::use_batched<Posit32_2>(kBatched, 4096));
  telemetry::set_enabled(false);
  telemetry::reset();
  EXPECT_TRUE(ker::use_batched<Posit32_2>(kBatched, 4096));
}

TEST(KernelsDispatch, UnsupportedScalarTypesStayScalar) {
  EXPECT_FALSE(ker::use_batched<float>(kBatched, 4096));
  EXPECT_FALSE(ker::use_batched<double>(kBatched, 4096));
}

// ---------------------------------------------------------------------------
// Solver-level identity: the backend choice must not change a single bit of
// any solve.

TEST(KernelsSolvers, CgBackendInvariant) {
  const auto& m = matrices::suite_matrix("bcsstk02");
  const la::Vec<double> b(static_cast<std::size_t>(m.csr.rows()), 1.0);
  la::CgOptions optS, optB;
  optS.kernels = kScalar;
  optB.kernels = kBatched;
  const auto cs = core::cg_in_format<Posit32_2>(m.csr, b, optS);
  const auto cb = core::cg_in_format<Posit32_2>(m.csr, b, optB);
  EXPECT_EQ(cs.status, cb.status);
  EXPECT_EQ(cs.iterations, cb.iterations);
  EXPECT_EQ(cs.final_relres, cb.final_relres);
  EXPECT_EQ(cs.true_relres, cb.true_relres);
}

TEST(KernelsSolvers, CholeskyBackendInvariant) {
  const auto& m = matrices::suite_matrix("bcsstk02");
  const la::Vec<double> b(static_cast<std::size_t>(m.dense.rows()), 1.0);
  const auto cs = core::cholesky_in_format<Posit32_2>(m.dense, b, kScalar);
  const auto cb = core::cholesky_in_format<Posit32_2>(m.dense, b, kBatched);
  EXPECT_EQ(cs.status, cb.status);
  EXPECT_EQ(cs.true_relres, cb.true_relres);
}

// ---------------------------------------------------------------------------
// Thread-count determinism: RESULTS artifacts from the batched backend must
// be byte-identical no matter how many threads ran the planes.

class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* v) {
    const char* old = std::getenv("PSTAB_THREADS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    setenv("PSTAB_THREADS", v, 1);
  }
  ~ThreadsEnv() {
    if (had_)
      setenv("PSTAB_THREADS", saved_.c_str(), 1);
    else
      unsetenv("PSTAB_THREADS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(KernelsSolvers, BatchedArtifactsThreadCountInvariant) {
  const std::vector<const matrices::GeneratedMatrix*> suite = {
      &matrices::suite_matrix("bcsstk02"), &matrices::suite_matrix("lund_b")};
  core::SolveRequest req;
  req.backend = ker::Backend::Batched;

  const auto run = [&](const char* threads) {
    ThreadsEnv env(threads);
    const auto rows = core::run_cg_suite(suite, req);
    return core::cg_results_json("cg", rows, req);
  };
  const std::string doc1 = run("1");
  const std::string doc8 = run("8");
  EXPECT_EQ(doc1, doc8);
}

// ---------------------------------------------------------------------------
// Backend::Simd: per-ISA equivalence against the scalar loops, the dispatch
// rules (force/kill switch, Auto routing, unavailable-ISA fallback with a
// SolveReport note), and NaR/NaN propagation.  The exhaustive all-pairs and
// full-pattern sweeps live in kernels_exhaustive_test (slow tier); this is
// the fast routing-and-sanity tier.

namespace simd = pstab::la::kernels::simd;
const ker::Context kSimd{ker::Backend::Simd};

/// RAII ISA override; restores the PSTAB_SIMD / autodetect rule on exit.
class ForcedIsa {
 public:
  explicit ForcedIsa(simd::Isa i) : honored_(simd::force_isa(i)) {}
  ~ForcedIsa() { simd::clear_forced_isa(); }
  [[nodiscard]] bool honored() const { return honored_; }

 private:
  bool honored_;
};

/// The vector ISAs this binary + CPU can actually run (never includes
/// kScalar).  Empty on a machine with no compiled-in vector leg.
std::vector<simd::Isa> vector_isas() {
  std::vector<simd::Isa> v;
  for (const simd::Isa i :
       {simd::Isa::kAvx2, simd::Isa::kAvx512, simd::Isa::kNeon})
    if (simd::available(i)) v.push_back(i);
  return v;
}

/// A vector ISA this binary/CPU can NOT run (x86 can't run neon and vice
/// versa, so one always exists).
simd::Isa unavailable_isa() {
  for (const simd::Isa i :
       {simd::Isa::kNeon, simd::Isa::kAvx512, simd::Isa::kAvx2})
    if (!simd::available(i)) return i;
  return simd::Isa::kNeon;  // unreachable: no CPU runs all three
}

template <class T>
void check_simd_blas(bool specials) {
  unsigned seed = specials ? 2900 : 2100;
  for (const int n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n) +
                 (specials ? " specials" : " random"));
    const auto x = rand_vec<T>(n, seed++, specials);
    const auto y = rand_vec<T>(n, seed++, specials);
    const T alpha = scalar_traits<T>::from_double(1.25);
    const T beta = scalar_traits<T>::from_double(-0.75);

    EXPECT_TRUE(bits_equal(ker::dot(kScalar, x, y), ker::dot(kSimd, x, y)));
    EXPECT_TRUE(bits_equal(ker::nrm2(kScalar, x), ker::nrm2(kSimd, x)));

    auto ys = y, yv = y;
    ker::axpy(kScalar, alpha, x, ys);
    ker::axpy(kSimd, alpha, x, yv);
    EXPECT_TRUE(bits_equal(ys, yv));

    auto xs = x, xv = x;
    ker::scal(kScalar, alpha, xs);
    ker::scal(kSimd, alpha, xv);
    EXPECT_TRUE(bits_equal(xs, xv));

    la::Vec<T> zs(n), zv(n);
    ker::xpby(kScalar, x, beta, y, zs);
    ker::xpby(kSimd, x, beta, y, zv);
    EXPECT_TRUE(bits_equal(zs, zv));

    for (const bool sub : {false, true}) {
      const std::size_t m = n / 2;
      const T ss = ker::update_chain(kScalar, alpha, x.data(), 2, y.data(), 1,
                                     m, sub);
      const T sv = ker::update_chain(kSimd, alpha, x.data(), 2, y.data(), 1,
                                     m, sub);
      EXPECT_TRUE(bits_equal(ss, sv));
    }
  }

  // Dense gemv through the row-chained vector kernel.
  const int rows = 37, cols = 53;
  std::mt19937_64 rng(specials ? 2700 : 2770);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  la::Dense<double> Ad(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) Ad(i, j) = dist(rng);
  const auto A = Ad.template cast<T>();
  const auto gx = rand_vec<T>(cols, specials ? 2701 : 2771, specials);
  la::Vec<T> gs, gv;
  ker::gemv(kScalar, A, gx, gs);
  ker::gemv(kSimd, A, gx, gv);
  EXPECT_TRUE(bits_equal(gs, gv));
}

TEST(SimdEquivalence, PerIsaBlas) {
  for (const simd::Isa isa : vector_isas()) {
    ForcedIsa f(isa);
    ASSERT_TRUE(f.honored());
    SCOPED_TRACE(simd::isa_name(isa));
    check_simd_blas<Posit16_1>(false);
    check_simd_blas<Posit16_1>(true);
    check_simd_blas<Posit32_2>(false);
    check_simd_blas<Posit32_2>(true);
  }
}

TEST(SimdEquivalence, NaRPropagationPerIsa) {
  for (const simd::Isa isa : vector_isas()) {
    ForcedIsa f(isa);
    SCOPED_TRACE(simd::isa_name(isa));
    const auto poison = [&](auto tag) {
      using T = decltype(tag);
      for (const int n : {1, 7, 8, 9, 64, 257}) {
        const auto base = rand_vec<T>(n, 8242 + n, false);
        const auto y = rand_vec<T>(n, 8252 + n, false);
        for (const int pos : {0, n / 2, n - 1}) {
          SCOPED_TRACE("n=" + std::to_string(n) +
                       " pos=" + std::to_string(pos));
          auto x = base;
          x[pos] = T::nar();

          const T ds = ker::dot(kScalar, x, y);
          const T dv = ker::dot(kSimd, x, y);
          EXPECT_TRUE(dv.is_nar());
          EXPECT_TRUE(bits_equal(ds, dv));

          const T alpha = scalar_traits<T>::from_double(-1.5);
          const T cs = ker::update_chain(kScalar, alpha, x.data(), 1,
                                         y.data(), 1, std::size_t(n), true);
          const T cv = ker::update_chain(kSimd, alpha, x.data(), 1, y.data(),
                                         1, std::size_t(n), true);
          EXPECT_TRUE(cv.is_nar());
          EXPECT_TRUE(bits_equal(cs, cv));

          auto as = y, av = y;
          ker::axpy(kScalar, alpha, x, as);
          ker::axpy(kSimd, alpha, x, av);
          EXPECT_TRUE(av[pos].is_nar());
          EXPECT_TRUE(bits_equal(as, av));
        }
      }
    };
    poison(Posit16_1{});
    poison(Posit32_2{});
  }
}

// ---------------------------------------------------------------------------
// Dispatch routing for the Simd backend.

TEST(SimdDispatch, ExplicitBackendRoutesWhenIsaActive) {
  const auto isas = vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector ISA on this runner";
  ForcedIsa f(isas.front());
  EXPECT_TRUE(ker::use_simd<Posit32_2>(kSimd, 1));  // no size floor
  EXPECT_TRUE(ker::use_simd<Posit16_1>(kSimd, 1));
  EXPECT_FALSE(ker::use_simd<Posit32_2>(kScalar, 1 << 20));
  EXPECT_FALSE(ker::use_simd<Posit32_2>(kBatched, 1 << 20));
  // Backend::Simd never routes into the decoded-plane backend: its scalar
  // fallback is Backend::Scalar so the two stay interchangeable bitwise.
  EXPECT_FALSE(ker::use_batched<Posit32_2>(kSimd, 1 << 20));
}

TEST(SimdDispatch, AutoPicksSimdWhenAvailable) {
  // The env latch outranks auto dispatch, so this assertion only holds in a
  // default environment (the PSTAB_SIMD CI legs pin the ISA process-wide).
  if (std::getenv("PSTAB_SIMD")) GTEST_SKIP() << "PSTAB_SIMD pins dispatch";
  const auto isas = vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector ISA on this runner";
  const ker::Context a{ker::Backend::Auto};
  EXPECT_TRUE(ker::use_simd<Posit32_2>(a, ker::kAutoMinN));
  EXPECT_FALSE(ker::use_simd<Posit32_2>(a, ker::kAutoMinN - 1));
}

TEST(SimdDispatch, KillSwitchForcesScalarPath) {
  // force_isa(kScalar) is what PSTAB_SIMD=scalar latches at startup.
  ForcedIsa f(simd::Isa::kScalar);
  EXPECT_TRUE(f.honored());
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  EXPECT_EQ(simd::fallback_note(), nullptr);  // an honored request: no note
  EXPECT_FALSE(ker::use_simd<Posit32_2>(kSimd, 1 << 20));
  // The kernels still answer, through the scalar loops, bit-identically.
  const auto x = rand_vec<Posit32_2>(257, 31337, true);
  const auto y = rand_vec<Posit32_2>(257, 31338, true);
  EXPECT_TRUE(bits_equal(ker::dot(kScalar, x, y), ker::dot(kSimd, x, y)));
}

TEST(SimdDispatch, UnavailableIsaFallsBackToScalarWithNote) {
  const simd::Isa missing = unavailable_isa();
  ForcedIsa f(missing);
  EXPECT_FALSE(f.honored());
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  const char* note = simd::fallback_note();
  ASSERT_NE(note, nullptr);
  EXPECT_NE(std::string(note).find("->scalar"), std::string::npos);
  EXPECT_FALSE(ker::use_simd<Posit32_2>(kSimd, 1 << 20));

  // A solve that asked for the vector backend surfaces the note in its
  // report instead of failing — and still produces the scalar bits.
  const auto& m = matrices::suite_matrix("bcsstk02");
  const la::Vec<double> b(static_cast<std::size_t>(m.csr.rows()), 1.0);
  la::CgOptions optS, optV;
  optS.kernels = kScalar;
  optV.kernels = kSimd;
  const auto cs = core::cg_in_format<Posit32_2>(m.csr, b, optS);
  const auto cv = core::cg_in_format<Posit32_2>(m.csr, b, optV);
  EXPECT_EQ(cs.iterations, cv.iterations);
  EXPECT_EQ(cs.final_relres, cv.final_relres);

  const auto A = m.csr.template cast<Posit32_2>();
  const auto bp = la::kernels::from_double_vec<Posit32_2>(b);
  la::Vec<Posit32_2> xp;
  la::CgOptions direct;
  direct.kernels = kSimd;
  const auto rep = la::cg_solve(A, bp, xp, direct);
  ASSERT_FALSE(rep.recovery.empty());
  EXPECT_EQ(rep.recovery.front().action, note);
}

TEST(SimdDispatch, TelemetryForcesScalar) {
  telemetry::set_enabled(true);
  EXPECT_FALSE(ker::use_simd<Posit32_2>(kSimd, 4096));
  telemetry::set_enabled(false);
  telemetry::reset();
}

TEST(SimdDispatch, UnsupportedFormatsStayScalar) {
  EXPECT_FALSE(ker::use_simd<Half>(kSimd, 4096));
  EXPECT_FALSE(ker::use_simd<float>(kSimd, 4096));
  EXPECT_FALSE(ker::use_simd<Posit32_3>(kSimd, 4096));
}

TEST(SimdDispatch, ParseIsaNamesRoundTrip) {
  simd::Isa out;
  EXPECT_TRUE(simd::parse_isa("scalar", out));
  EXPECT_EQ(out, simd::Isa::kScalar);
  EXPECT_TRUE(simd::parse_isa("0", out));
  EXPECT_EQ(out, simd::Isa::kScalar);
  for (const simd::Isa i :
       {simd::Isa::kAvx2, simd::Isa::kAvx512, simd::Isa::kNeon}) {
    EXPECT_TRUE(simd::parse_isa(simd::isa_name(i), out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(simd::parse_isa("sse9", out));
}

// ---------------------------------------------------------------------------
// Solver-level identity for the vector backend, per available ISA.

TEST(KernelsSolvers, CgSimdBackendInvariantPerIsa) {
  const auto& m = matrices::suite_matrix("bcsstk02");
  const la::Vec<double> b(static_cast<std::size_t>(m.csr.rows()), 1.0);
  la::CgOptions optS;
  optS.kernels = kScalar;
  const auto cs = core::cg_in_format<Posit32_2>(m.csr, b, optS);
  for (const simd::Isa isa : vector_isas()) {
    ForcedIsa f(isa);
    SCOPED_TRACE(simd::isa_name(isa));
    la::CgOptions optV;
    optV.kernels = kSimd;
    const auto cv = core::cg_in_format<Posit32_2>(m.csr, b, optV);
    EXPECT_EQ(cs.status, cv.status);
    EXPECT_EQ(cs.iterations, cv.iterations);
    EXPECT_EQ(cs.final_relres, cv.final_relres);
    EXPECT_EQ(cs.true_relres, cv.true_relres);
  }
}

TEST(KernelsSolvers, CholeskySimdBackendInvariantPerIsa) {
  const auto& m = matrices::suite_matrix("bcsstk02");
  const la::Vec<double> b(static_cast<std::size_t>(m.dense.rows()), 1.0);
  const auto cs = core::cholesky_in_format<Posit32_2>(m.dense, b, kScalar);
  for (const simd::Isa isa : vector_isas()) {
    ForcedIsa f(isa);
    SCOPED_TRACE(simd::isa_name(isa));
    const auto cv = core::cholesky_in_format<Posit32_2>(m.dense, b, kSimd);
    EXPECT_EQ(cs.status, cv.status);
    EXPECT_EQ(cs.true_relres, cv.true_relres);
  }
}

}  // namespace
