// Backend-equivalence suite for la::kernels: the batched decoded-plane
// kernels must be bit-identical to the scalar loops on every input —
// random data, specials (NaR / zero / ±maxpos / ±minpos, IEEE inf/NaN),
// degenerate and odd sizes — and the dispatch predicate itself must route
// exactly as documented (Auto thresholds, default-backend kill switch,
// telemetry fallback).  Solver-level identity (CG, Cholesky) and the
// thread-count determinism of batched artifacts close the loop.
// (The all-pairs 8-bit sweep against the GMP oracle is
// kernels_exhaustive_test.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/report_json.hpp"
#include "core/telemetry/telemetry.hpp"
#include "ieee/softfloat.hpp"
#include "la/cg.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/kernels/kernels.hpp"
#include "matrices/generator.hpp"
#include "matrices/suite.hpp"
#include "posit/lut.hpp"
#include "posit/posit.hpp"

namespace {

using namespace pstab;
namespace ker = pstab::la::kernels;

const ker::Context kScalar{ker::Backend::Scalar};
const ker::Context kBatched{ker::Backend::Batched};

template <class T>
bool bits_equal(const la::Vec<T>& a, const la::Vec<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

template <class T>
bool bits_equal(const T& a, const T& b) {
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

/// Random vector; when `specials` is set roughly one element in eight is a
/// special value (posit NaR / zero / ±maxpos / ±minpos, IEEE ±inf / NaN /
/// zero) so the flag paths and propagation rules get exercised.
template <class T>
la::Vec<T> rand_vec(int n, unsigned seed, bool specials) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  la::Vec<T> v(n);
  for (auto& x : v) x = scalar_traits<T>::from_double(dist(rng));
  if (!specials) return v;
  std::vector<T> s;
  if constexpr (requires { T::nar(); }) {
    s = {T::zero(),   T::nar(),     T::maxpos(),
         -T::maxpos(), T::minpos(), -T::minpos()};
  } else {
    const double inf = std::numeric_limits<double>::infinity();
    s = {scalar_traits<T>::zero(), scalar_traits<T>::from_double(inf),
         scalar_traits<T>::from_double(-inf),
         scalar_traits<T>::from_double(std::nan("")), scalar_traits<T>::max()};
  }
  for (auto& x : v)
    if (rng() % 8 == 0) x = s[rng() % s.size()];
  return v;
}

const int kSizes[] = {0, 1, 2, 3, 17, 257, 1000};

template <class T>
void check_blas1(bool specials) {
  unsigned seed = specials ? 900 : 100;
  for (const int n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n) +
                 (specials ? " specials" : " random"));
    const auto x = rand_vec<T>(n, seed++, specials);
    const auto y = rand_vec<T>(n, seed++, specials);
    const T alpha = scalar_traits<T>::from_double(1.25);
    const T beta = scalar_traits<T>::from_double(-0.75);

    EXPECT_TRUE(bits_equal(ker::dot(kScalar, x, y), ker::dot(kBatched, x, y)));
    EXPECT_TRUE(bits_equal(ker::dot_fused(kScalar, x, y),
                           ker::dot_fused(kBatched, x, y)));
    EXPECT_TRUE(
        bits_equal(ker::nrm2(kScalar, x), ker::nrm2(kBatched, x)));

    auto ys = y, yb = y;
    ker::axpy(kScalar, alpha, x, ys);
    ker::axpy(kBatched, alpha, x, yb);
    EXPECT_TRUE(bits_equal(ys, yb));

    auto xs = x, xb = x;
    ker::scal(kScalar, alpha, xs);
    ker::scal(kBatched, alpha, xb);
    EXPECT_TRUE(bits_equal(xs, xb));

    la::Vec<T> zs(n), zb(n);
    ker::xpby(kScalar, x, beta, y, zs);
    ker::xpby(kBatched, x, beta, y, zb);
    EXPECT_TRUE(bits_equal(zs, zb));

    // Strided multiply-accumulate chains, both directions.
    for (const bool sub : {false, true}) {
      const std::size_t m = n / 2;
      const T ss = ker::update_chain(kScalar, alpha, x.data(), 2, y.data(), 1,
                                     m, sub);
      const T sb = ker::update_chain(kBatched, alpha, x.data(), 2, y.data(), 1,
                                     m, sub);
      EXPECT_TRUE(bits_equal(ss, sb));
    }
  }
}

template <class T>
void check_blas2(bool specials) {
  const int rows = 37, cols = 53;
  std::mt19937_64 rng(specials ? 7000 : 77);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  la::Dense<double> Ad(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) Ad(i, j) = dist(rng);
  const auto A = Ad.template cast<T>();
  const auto x = rand_vec<T>(cols, specials ? 7001 : 78, specials);

  la::Vec<T> ys, yb;
  ker::gemv(kScalar, A, x, ys);
  ker::gemv(kBatched, A, x, yb);
  EXPECT_TRUE(bits_equal(ys, yb));

  // CSR with the x-side specials flowing through the gather.
  const matrices::MatrixSpec spec{"kerneq", 64, 640, 1e3, 1e1, 1e1};
  const auto g = matrices::generate_spd(spec, 3);
  const auto S = g.csr.template cast<T>();
  const auto xs = rand_vec<T>(64, specials ? 7002 : 79, specials);
  la::Vec<T> ss, sb;
  ker::spmv(kScalar, S, xs, ss);
  ker::spmv(kBatched, S, xs, sb);
  EXPECT_TRUE(bits_equal(ss, sb));
}

TEST(KernelsEquivalence, Posit16Blas1) {
  check_blas1<Posit16_1>(false);
  check_blas1<Posit16_1>(true);
}
TEST(KernelsEquivalence, Posit32Blas1) {
  check_blas1<Posit32_2>(false);
  check_blas1<Posit32_2>(true);
}
TEST(KernelsEquivalence, HalfBlas1) {
  check_blas1<Half>(false);
  check_blas1<Half>(true);
}
TEST(KernelsEquivalence, Posit16Blas2) {
  check_blas2<Posit16_1>(false);
  check_blas2<Posit16_1>(true);
}
TEST(KernelsEquivalence, Posit32Blas2) {
  check_blas2<Posit32_2>(false);
  check_blas2<Posit32_2>(true);
}
TEST(KernelsEquivalence, HalfBlas2) {
  check_blas2<Half>(false);
  check_blas2<Half>(true);
}

// ---------------------------------------------------------------------------
// Directed NaR propagation: a single poisoned element anywhere in the input
// must poison the reductions identically in both backends — the decoded-plane
// flag machinery may not lose, duplicate, or reorder the NaR no matter which
// lane or tail position it lands in.

template <class T>
void check_nar_propagation() {
  for (const int n : {1, 2, 7, 8, 9, 64, 257}) {
    const auto base = rand_vec<T>(n, 4242 + n, false);
    const auto y = rand_vec<T>(n, 5252 + n, false);
    for (const int pos : {0, n / 2, n - 1}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " pos=" + std::to_string(pos));
      auto x = base;
      x[pos] = T::nar();

      const T ds = ker::dot(kScalar, x, y);
      const T db = ker::dot(kBatched, x, y);
      EXPECT_TRUE(ds.is_nar());
      EXPECT_TRUE(bits_equal(ds, db));

      const T fs = ker::dot_fused(kScalar, x, y);
      const T fb = ker::dot_fused(kBatched, x, y);
      EXPECT_TRUE(fs.is_nar());
      EXPECT_TRUE(bits_equal(fs, fb));

      // Poison on the update-chain side too (the Cholesky inner loop).
      const T alpha = scalar_traits<T>::from_double(-1.5);
      const T cs =
          ker::update_chain(kScalar, alpha, x.data(), 1, y.data(), 1,
                            std::size_t(n), true);
      const T cb =
          ker::update_chain(kBatched, alpha, x.data(), 1, y.data(), 1,
                            std::size_t(n), true);
      EXPECT_TRUE(cs.is_nar());
      EXPECT_TRUE(bits_equal(cs, cb));

      // And through the elementwise updates into a full vector.
      auto as = y, ab = y;
      ker::axpy(kScalar, alpha, x, as);
      ker::axpy(kBatched, alpha, x, ab);
      EXPECT_TRUE(as[pos].is_nar());
      EXPECT_TRUE(bits_equal(as, ab));
    }
  }
}

TEST(KernelsEquivalence, NaRPropagationPosit16) {
  check_nar_propagation<Posit16_1>();
}
TEST(KernelsEquivalence, NaRPropagationPosit32) {
  check_nar_propagation<Posit32_2>();
}

TEST(KernelsEquivalence, NanPropagationHalf) {
  // IEEE twin of the NaR sweep: one quiet NaN must surface identically.
  for (const int n : {1, 8, 9, 257}) {
    const auto base = rand_vec<Half>(n, 6400 + n, false);
    const auto y = rand_vec<Half>(n, 6500 + n, false);
    for (const int pos : {0, n - 1}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " pos=" + std::to_string(pos));
      auto x = base;
      x[pos] = scalar_traits<Half>::from_double(std::nan(""));
      const Half ds = ker::dot(kScalar, x, y);
      const Half db = ker::dot(kBatched, x, y);
      EXPECT_TRUE(std::isnan(ds.to_double()));
      EXPECT_TRUE(bits_equal(ds, db));
      const Half cs = ker::update_chain(kScalar, Half(1.0), x.data(), 1,
                                        y.data(), 1, std::size_t(n), false);
      const Half cb = ker::update_chain(kBatched, Half(1.0), x.data(), 1,
                                        y.data(), 1, std::size_t(n), false);
      EXPECT_TRUE(std::isnan(cs.to_double()));
      EXPECT_TRUE(bits_equal(cs, cb));
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch routing.

TEST(KernelsDispatch, ExplicitBackendsWin) {
  EXPECT_FALSE(ker::use_batched<Posit32_2>(kScalar, 1 << 20));
  EXPECT_TRUE(ker::use_batched<Posit32_2>(kBatched, 1));
}

TEST(KernelsDispatch, AutoRespectsSizeFloor) {
  const ker::Context a{ker::Backend::Auto};
  EXPECT_FALSE(ker::use_batched<Posit32_2>(a, ker::kAutoMinN - 1));
  EXPECT_TRUE(ker::use_batched<Posit32_2>(a, ker::kAutoMinN));
}

TEST(KernelsDispatch, AutoDefersToLutPreference) {
  // Only the N <= 8 single-load result tables make the scalar path preferable
  // (the 16-bit decode-assist does not: batched still wins there).
  using P8 = Posit<8, 2>;
  const ker::Context a{ker::Backend::Auto};
  lut::enable<8, 2>();
  EXPECT_FALSE(ker::use_batched<P8>(a, 4096));        // LUT path preferred
  EXPECT_TRUE(ker::use_batched<P8>(kBatched, 4096));  // explicit wins
  lut::disable<8, 2>();
  EXPECT_TRUE(ker::use_batched<P8>(a, 4096));
}

TEST(KernelsDispatch, DefaultBackendKillSwitch) {
  // set_default_backend(Scalar) is exactly what PSTAB_KERNELS=scalar (or =0)
  // latches at startup: Auto contexts fall back, explicit contexts still win.
  const ker::Context a{ker::Backend::Auto};
  ASSERT_TRUE(ker::use_batched<Posit32_2>(a, 4096));
  ker::set_default_backend(ker::Backend::Scalar);
  EXPECT_FALSE(ker::use_batched<Posit32_2>(a, 4096));
  EXPECT_TRUE(ker::use_batched<Posit32_2>(kBatched, 4096));
  ker::set_default_backend(ker::Backend::Batched);
  EXPECT_TRUE(ker::use_batched<Posit32_2>(a, 1));  // forced, no size floor
  ker::set_default_backend(ker::Backend::Auto);
  EXPECT_TRUE(ker::use_batched<Posit32_2>(a, 4096));
}

TEST(KernelsDispatch, TelemetryForcesScalar) {
  telemetry::set_enabled(true);
  EXPECT_FALSE(ker::use_batched<Posit32_2>(kBatched, 4096));
  telemetry::set_enabled(false);
  telemetry::reset();
  EXPECT_TRUE(ker::use_batched<Posit32_2>(kBatched, 4096));
}

TEST(KernelsDispatch, UnsupportedScalarTypesStayScalar) {
  EXPECT_FALSE(ker::use_batched<float>(kBatched, 4096));
  EXPECT_FALSE(ker::use_batched<double>(kBatched, 4096));
}

// ---------------------------------------------------------------------------
// Solver-level identity: the backend choice must not change a single bit of
// any solve.

TEST(KernelsSolvers, CgBackendInvariant) {
  const auto& m = matrices::suite_matrix("bcsstk02");
  const la::Vec<double> b(static_cast<std::size_t>(m.csr.rows()), 1.0);
  la::CgOptions optS, optB;
  optS.kernels = kScalar;
  optB.kernels = kBatched;
  const auto cs = core::cg_in_format<Posit32_2>(m.csr, b, optS);
  const auto cb = core::cg_in_format<Posit32_2>(m.csr, b, optB);
  EXPECT_EQ(cs.status, cb.status);
  EXPECT_EQ(cs.iterations, cb.iterations);
  EXPECT_EQ(cs.final_relres, cb.final_relres);
  EXPECT_EQ(cs.true_relres, cb.true_relres);
}

TEST(KernelsSolvers, CholeskyBackendInvariant) {
  const auto& m = matrices::suite_matrix("bcsstk02");
  const la::Vec<double> b(static_cast<std::size_t>(m.dense.rows()), 1.0);
  const auto cs = core::cholesky_in_format<Posit32_2>(m.dense, b, kScalar);
  const auto cb = core::cholesky_in_format<Posit32_2>(m.dense, b, kBatched);
  EXPECT_EQ(cs.ok, cb.ok);
  EXPECT_EQ(cs.backward_error, cb.backward_error);
}

// ---------------------------------------------------------------------------
// Thread-count determinism: RESULTS artifacts from the batched backend must
// be byte-identical no matter how many threads ran the planes.

class ThreadsEnv {
 public:
  explicit ThreadsEnv(const char* v) {
    const char* old = std::getenv("PSTAB_THREADS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    setenv("PSTAB_THREADS", v, 1);
  }
  ~ThreadsEnv() {
    if (had_)
      setenv("PSTAB_THREADS", saved_.c_str(), 1);
    else
      unsetenv("PSTAB_THREADS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(KernelsSolvers, BatchedArtifactsThreadCountInvariant) {
  const std::vector<const matrices::GeneratedMatrix*> suite = {
      &matrices::suite_matrix("bcsstk02"), &matrices::suite_matrix("lund_b")};
  core::CgExperimentOptions opt;
  opt.backend = ker::Backend::Batched;

  const auto run = [&](const char* threads) {
    ThreadsEnv env(threads);
    const auto rows = core::run_cg_suite(suite, opt);
    return core::cg_results_json("cg", rows, opt);
  };
  const std::string doc1 = run("1");
  const std::string doc8 = run("8");
  EXPECT_EQ(doc1, doc8);
}

}  // namespace
