// Blocked-vs-unblocked factorization identity and the determinism of the
// tiled parallel paths.
//
// The contract under test (la/blocked.hpp): for every format, every kernels
// backend and every panel width, cholesky_blocked / lu_factor_blocked
// produce bit-identical results to the unblocked reference loops — factors,
// statuses, failed columns and pivot permutations — because blocking only
// cuts each element's multiply-subtract chain at panel boundaries with an
// exact store/reload.  Alongside it: factorization_backward_error and the
// row-partitioned SpMV/gemv must produce byte-identical results for any
// PSTAB_THREADS (parallel_threads() re-reads the env on every call, so the
// tests flip it at runtime).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "ieee/softfloat.hpp"
#include "la/blocked.hpp"
#include "la/cholesky.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/kernels/kernels.hpp"
#include "la/lu.hpp"
#include "matrices/generator.hpp"
#include "posit/posit.hpp"

namespace {

using namespace pstab;
namespace ker = pstab::la::kernels;
using la::Dense;
using la::Vec;

template <class T>
bool bits_equal(const Dense<T>& a, const Dense<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.data().empty() ||
          std::memcmp(a.data().data(), b.data().data(),
                      a.data().size() * sizeof(T)) == 0);
}

template <class T>
bool bits_equal(const Vec<T>& a, const Vec<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// Random SPD matrix in format T: B^T B + n I in double, rounded once into
/// T (symmetrically, so the input really is symmetric in T).
template <class T>
Dense<T> rand_spd(int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Dense<double> B(n, n);
  for (auto& v : B.data()) v = dist(rng);
  Dense<T> A(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= i; ++j) {
      double s = (i == j) ? n : 0.0;
      for (int k = 0; k < n; ++k) s += B(k, i) * B(k, j);
      A(i, j) = A(j, i) = scalar_traits<T>::from_double(s);
    }
  return A;
}

template <class T>
Dense<T> rand_general(int n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Dense<T> A(n, n);
  for (auto& v : A.data()) v = scalar_traits<T>::from_double(dist(rng));
  return A;
}

template <class T>
void expect_chol_identical(const Dense<T>& A, const ker::Context& kc,
                           int block, const char* what) {
  const auto u = la::cholesky_unblocked(A, nullptr, kc);
  const auto b = la::cholesky_blocked(A, nullptr, kc, nullptr, block);
  ASSERT_EQ(u.status, b.status) << what;
  EXPECT_EQ(u.failed_column, b.failed_column) << what;
  if (u.status == la::CholStatus::ok) {
    EXPECT_TRUE(bits_equal(u.R, b.R)) << what;
  }
}

template <class T>
void expect_lu_identical(const Dense<T>& A, const ker::Context& kc, int block,
                         const char* what) {
  const auto u = la::lu_factor_unblocked(A);
  const auto b = la::lu_factor_blocked(A, kc, block);
  ASSERT_EQ(u.status, b.status) << what;
  EXPECT_EQ(u.failed_column, b.failed_column) << what;
  if (u.status == la::LuStatus::ok) {
    EXPECT_EQ(u.perm, b.perm) << what;
    EXPECT_TRUE(bits_equal(u.lu, b.lu)) << what;
  }
}

// --- exhaustive small sizes -------------------------------------------------

template <class T>
void chol_exhaustive_small(const char* fmt) {
  const ker::Context kc{};
  for (int n = 1; n <= 20; ++n) {
    const auto A = rand_spd<T>(n, 100u + unsigned(n));
    for (int block : {1, 2, 3, 5, 8, n, n + 3})
      expect_chol_identical(A, kc, block, fmt);
  }
}

TEST(BlockedCholesky, ExhaustiveSmallDouble) {
  chol_exhaustive_small<double>("double");
}
TEST(BlockedCholesky, ExhaustiveSmallFloat) {
  chol_exhaustive_small<float>("float");
}
TEST(BlockedCholesky, ExhaustiveSmallPosit32) {
  chol_exhaustive_small<Posit32_2>("posit32_2");
}
TEST(BlockedCholesky, ExhaustiveSmallPosit16) {
  chol_exhaustive_small<Posit16_1>("posit16_1");
}
TEST(BlockedCholesky, ExhaustiveSmallHalf) {
  chol_exhaustive_small<Half>("half");
}

template <class T>
void lu_exhaustive_small(const char* fmt) {
  const ker::Context kc{};
  for (int n = 1; n <= 20; ++n) {
    const auto A = rand_general<T>(n, 300u + unsigned(n));
    for (int block : {1, 2, 3, 5, 8, n, n + 3})
      expect_lu_identical(A, kc, block, fmt);
  }
}

TEST(BlockedLu, ExhaustiveSmallDouble) { lu_exhaustive_small<double>("double"); }
TEST(BlockedLu, ExhaustiveSmallFloat) { lu_exhaustive_small<float>("float"); }
TEST(BlockedLu, ExhaustiveSmallPosit32) {
  lu_exhaustive_small<Posit32_2>("posit32_2");
}
TEST(BlockedLu, ExhaustiveSmallPosit16) {
  lu_exhaustive_small<Posit16_1>("posit16_1");
}
TEST(BlockedLu, ExhaustiveSmallHalf) { lu_exhaustive_small<Half>("half"); }

// --- randomized larger sizes, all backends ----------------------------------

TEST(BlockedCholesky, RandomizedLargerAcrossBackends) {
  for (auto backend :
       {ker::Backend::Scalar, ker::Backend::Batched, ker::Backend::Simd}) {
    const ker::Context kc{backend};
    for (int n : {64, 97, 200}) {
      const auto A = rand_spd<double>(n, 500u + unsigned(n));
      for (int block : {7, 32, 64}) expect_chol_identical(A, kc, block, "d");
    }
    const auto P = rand_spd<Posit32_2>(96, 7);
    for (int block : {13, 48}) expect_chol_identical(P, kc, block, "p32");
  }
}

TEST(BlockedLu, RandomizedLargerAcrossBackends) {
  for (auto backend :
       {ker::Backend::Scalar, ker::Backend::Batched, ker::Backend::Simd}) {
    const ker::Context kc{backend};
    for (int n : {64, 97, 200}) {
      const auto A = rand_general<double>(n, 700u + unsigned(n));
      for (int block : {7, 32, 64}) expect_lu_identical(A, kc, block, "d");
    }
    const auto P = rand_general<Posit32_2>(96, 8);
    for (int block : {13, 48}) expect_lu_identical(P, kc, block, "p32");
  }
}

TEST(BlockedCholesky, DispatcherMatchesExplicitSchedules) {
  // The auto path (Context.block == 0) must route exactly as documented:
  // unblocked below kAutoMinN, blocked with pick_block(n) above it; a forced
  // width >= n falls back to the unblocked loops.
  const auto Asmall = rand_spd<double>(64, 1);
  EXPECT_TRUE(bits_equal(la::cholesky(Asmall).R,
                         la::cholesky_unblocked(Asmall).R));
  const int n = la::blocked::kAutoMinN + 8;
  const auto A = rand_spd<double>(n, 2);
  const auto r = la::cholesky(A);
  const auto ref = la::cholesky_unblocked(A);
  EXPECT_TRUE(bits_equal(r.R, ref.R));
  ker::Context wide{};
  wide.block = n + 1;
  EXPECT_TRUE(bits_equal(la::cholesky(A, nullptr, wide).R, ref.R));
  EXPECT_EQ(la::blocked::effective_block(wide, n), 0);
  ker::Context forced{};
  forced.block = 24;
  EXPECT_EQ(la::blocked::effective_block(forced, n), 24);
  EXPECT_TRUE(bits_equal(la::cholesky(A, nullptr, forced).R, ref.R));
}

// --- failure paths ----------------------------------------------------------

TEST(BlockedCholesky, FailureStatusesMatchUnblocked) {
  // Indefinite input: flip the sign of a diagonal entry past the first
  // panel so the failure fires inside a later panel.
  auto A = rand_spd<double>(40, 11);
  A(29, 29) = -std::abs(A(29, 29)) * 40;
  for (int block : {8, 16, 64}) {
    const auto u = la::cholesky_unblocked(A);
    const auto b = la::cholesky_blocked(A, nullptr, {}, nullptr, block);
    ASSERT_EQ(u.status, la::CholStatus::not_positive_definite);
    EXPECT_EQ(b.status, u.status);
    EXPECT_EQ(b.failed_column, u.failed_column);
  }
  // Poisoned input: a NaN reaches the factorization.
  auto B = rand_spd<double>(40, 12);
  B(20, 17) = B(17, 20) = std::nan("");
  for (int block : {8, 16}) {
    const auto u = la::cholesky_unblocked(B);
    const auto b = la::cholesky_blocked(B, nullptr, {}, nullptr, block);
    ASSERT_EQ(u.status, la::CholStatus::arithmetic_error);
    EXPECT_EQ(b.status, u.status);
    EXPECT_EQ(b.failed_column, u.failed_column);
  }
}

TEST(BlockedLu, FailureStatusesMatchUnblocked) {
  // Exactly singular: column 25 is all zeros, and row operations keep it
  // exactly zero, so the pivot scan at k = 25 (mid-panel) finds nothing.
  auto A = rand_general<double>(40, 13);
  for (int i = 0; i < 40; ++i) A(i, 25) = 0.0;
  for (int block : {8, 16, 64}) {
    const auto u = la::lu_factor_unblocked(A);
    const auto b = la::lu_factor_blocked(A, {}, block);
    ASSERT_EQ(u.status, la::LuStatus::singular);
    EXPECT_EQ(b.status, u.status);
    EXPECT_EQ(b.failed_column, u.failed_column);
  }
  auto B = rand_general<double>(40, 14);
  B(30, 22) = std::nan("");
  for (int block : {8, 16}) {
    const auto u = la::lu_factor_unblocked(B);
    const auto b = la::lu_factor_blocked(B, {}, block);
    ASSERT_EQ(u.status, la::LuStatus::arithmetic_error);
    EXPECT_EQ(b.status, u.status);
    EXPECT_EQ(b.failed_column, u.failed_column);
  }
}

// --- thread-count determinism ----------------------------------------------

/// Scoped PSTAB_THREADS override: parallel_threads() re-reads the env on
/// every call, so flipping it at runtime retargets the very next parallel
/// region — no process isolation needed.
struct ThreadsGuard {
  ThreadsGuard(const char* v) { setenv("PSTAB_THREADS", v, 1); }
  ~ThreadsGuard() { unsetenv("PSTAB_THREADS"); }
};

TEST(ThreadDeterminism, BlockedFactorsIdenticalAcrossThreadCounts) {
  const int n = 260;  // above kAutoMinN, with spans crossing the par gates
  const auto A = rand_spd<double>(n, 21);
  const auto G = rand_general<double>(n, 22);
  Dense<double> r1, l1;
  {
    ThreadsGuard g("1");
    r1 = la::cholesky(A).R;
    l1 = la::lu_factor(G).lu;
  }
  {
    ThreadsGuard g("8");
    EXPECT_TRUE(bits_equal(la::cholesky(A).R, r1));
    EXPECT_TRUE(bits_equal(la::lu_factor(G).lu, l1));
  }
}

TEST(ThreadDeterminism, SpmvBytesIdenticalAcrossThreadCounts) {
  // n just above kParMinSparseRows so the row partition actually engages.
  matrices::MatrixSpec spec{"spmv_det", 9000, 62994, 1.0e4, 1.0, 1.0e4};
  spec.sparse_only = true;
  const auto g = matrices::generate_spd_sparse(spec);
  ASSERT_EQ(g.n, 9000);
  ASSERT_EQ(g.dense.rows(), 0);  // sparse-only: never densified
  Vec<double> x(g.n);
  std::mt19937_64 rng(33);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& v : x) v = dist(rng);
  Vec<double> y1, y8;
  {
    ThreadsGuard t("1");
    g.csr.spmv(x, y1);
  }
  {
    ThreadsGuard t("8");
    g.csr.spmv(x, y8);
  }
  EXPECT_TRUE(bits_equal(y1, y8));
}

TEST(ThreadDeterminism, DenseGemvBytesIdenticalAcrossThreadCounts) {
  // rows*cols above kParMinDenseWork (1<<20): 1100^2 > 1.2M.
  const int n = 1100;
  Dense<double> A(n, n);
  std::mt19937_64 rng(34);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& v : A.data()) v = dist(rng);
  Vec<double> x(n);
  for (auto& v : x) v = dist(rng);
  Vec<double> y1, y8;
  {
    ThreadsGuard t("1");
    y1 = A * x;
  }
  {
    ThreadsGuard t("8");
    y8 = A * x;
  }
  EXPECT_TRUE(bits_equal(y1, y8));
}

// --- backward error: parallel exact and sampled modes -----------------------

TEST(Berr, ExactModeDeterministicAcrossThreadCounts) {
  const int n = 300;
  const auto A = rand_spd<double>(n, 41);
  const auto f = la::cholesky(A);
  ASSERT_EQ(f.status, la::CholStatus::ok);
  double b1, b8;
  {
    ThreadsGuard t("1");
    b1 = la::factorization_backward_error(A, f.R);
  }
  {
    ThreadsGuard t("8");
    b8 = la::factorization_backward_error(A, f.R);
  }
  // Not just close: the tiled index-ordered reduction makes the double
  // bit-identical.
  EXPECT_EQ(b1, b8);
  // And it is the true backward error of an accurate factorization.
  EXPECT_LT(b1, 1e-13);
  EXPECT_GE(b1, 0.0);
}

TEST(Berr, SampledModeEstimatesExact) {
  const int n = 220;
  const auto A = rand_spd<Posit16_1>(n, 42);
  const auto f = la::cholesky(A);
  ASSERT_EQ(f.status, la::CholStatus::ok);
  const double exact = la::factorization_backward_error(A, f.R);
  la::BerrOptions opt;
  opt.mode = la::BerrOptions::Mode::sampled;
  opt.sample_pairs = 20000;
  const double est = la::factorization_backward_error(A, f.R, opt);
  ASSERT_GT(exact, 0.0);  // 16-bit factorization: real rounding error
  // A Monte Carlo Frobenius estimate with 20k cells of a 220^2 grid: right
  // order of magnitude, deterministic seed so no flakiness.
  EXPECT_GT(est, exact / 4);
  EXPECT_LT(est, exact * 4);
  // Same options -> same bits, any thread count.
  {
    ThreadsGuard t("7");
    EXPECT_EQ(la::factorization_backward_error(A, f.R, opt), est);
  }
}

TEST(Berr, AutoModePicksExactBelowThresholdAndSampledAbove) {
  const int n = 96;
  const auto A = rand_spd<double>(n, 43);
  const auto f = la::cholesky(A);
  ASSERT_EQ(f.status, la::CholStatus::ok);
  la::BerrOptions exact_opt;  // defaults: exact
  la::BerrOptions auto_small;
  auto_small.mode = la::BerrOptions::Mode::auto_mode;
  EXPECT_EQ(la::factorization_backward_error(A, f.R, auto_small),
            la::factorization_backward_error(A, f.R, exact_opt));
  la::BerrOptions auto_forced = auto_small;
  auto_forced.auto_exact_max_n = n - 1;  // now n is "large": sampled path
  la::BerrOptions sampled = auto_forced;
  sampled.mode = la::BerrOptions::Mode::sampled;
  EXPECT_EQ(la::factorization_backward_error(A, f.R, auto_forced),
            la::factorization_backward_error(A, f.R, sampled));
}

}  // namespace
