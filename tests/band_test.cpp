// Band-storage Cholesky tests: agreement with the dense factorization
// (identical operation order in double => identical bits), solves, failure
// detection, and posit-format operation.
#include <gtest/gtest.h>

#include "la/band.hpp"
#include "la/cholesky.hpp"
#include "matrices/generator.hpp"
#include "posit/posit.hpp"

namespace {

using namespace pstab;

matrices::GeneratedMatrix banded_spd() {
  matrices::MatrixSpec spec{"band_spd", 80, 700, 1.0e4, 20.0, 1.0e2};
  return matrices::generate_spd(spec, 0);
}

TEST(Band, RoundTripsThroughDense) {
  const auto g = banded_spd();
  const int w = la::SymBand<double>::detect_bandwidth(g.dense);
  EXPECT_GT(w, 0);
  EXPECT_LT(w, g.n);
  const auto B = la::SymBand<double>::from_dense(g.dense, w);
  const auto D = B.to_dense();
  for (int i = 0; i < g.n; ++i)
    for (int j = 0; j < g.n; ++j) EXPECT_EQ(D(i, j), g.dense(i, j));
  EXPECT_EQ(B.get(0, g.n - 1), 0.0);  // outside the band
}

TEST(Band, CholeskyMatchesDenseBitForBit) {
  const auto g = banded_spd();
  const int w = la::SymBand<double>::detect_bandwidth(g.dense);
  const auto B = la::SymBand<double>::from_dense(g.dense, w);
  const auto rb = la::band_cholesky(B);
  ASSERT_TRUE(rb.has_value());
  const auto rd = la::cholesky(g.dense);
  ASSERT_EQ(rd.status, la::CholStatus::ok);
  // Same operation order in both kernels: identical doubles inside the band.
  for (int i = 0; i < g.n; ++i)
    for (int d = 0; d <= w && i + d < g.n; ++d)
      EXPECT_EQ(rb->at(i, d), rd.R(i, i + d)) << i << "+" << d;
  // And the dense factor has no fill outside the band.
  for (int i = 0; i < g.n; ++i)
    for (int j = i + w + 1; j < g.n; ++j) EXPECT_EQ(rd.R(i, j), 0.0);
}

TEST(Band, SolveMatchesDense) {
  const auto g = banded_spd();
  const int w = la::SymBand<double>::detect_bandwidth(g.dense);
  const auto B = la::SymBand<double>::from_dense(g.dense, w);
  const auto rb = la::band_cholesky(B);
  ASSERT_TRUE(rb.has_value());
  const auto b = matrices::paper_rhs(g.dense);
  const auto x = la::band_cholesky_solve(*rb, b);
  const auto r = la::residual(g.dense, b, x);
  EXPECT_LT(la::kernels::nrm2_d(r) / la::kernels::nrm2_d(b), 1e-10);
}

TEST(Band, DetectsIndefinite) {
  la::SymBand<double> B(2, 1);
  B.at(0, 0) = 1;
  B.at(0, 1) = 4;
  B.at(1, 0) = 1;  // eigenvalues 5, -3
  EXPECT_FALSE(la::band_cholesky(B).has_value());
}

TEST(Band, WorksInPosit) {
  const auto g = banded_spd();
  const int w = la::SymBand<double>::detect_bandwidth(g.dense);
  const auto Bp = la::SymBand<Posit32_2>::from_dense(
      g.dense.cast<Posit32_2>(), w);
  const auto rb = la::band_cholesky(Bp);
  ASSERT_TRUE(rb.has_value());
  const auto b = matrices::paper_rhs(g.dense);
  const auto x =
      la::band_cholesky_solve(*rb, la::kernels::from_double_vec<Posit32_2>(b));
  const auto r = la::residual(g.dense, b, la::kernels::to_double_vec(x));
  EXPECT_LT(la::kernels::nrm2_d(r) / la::kernels::nrm2_d(b), 1e-5);
}

}  // namespace
