// Tests for the reporting/formatting utilities every bench binary uses, the
// precision-series generator, and the ulp study (shape assertions on the
// §II claim: IEEE flat, posit V-shaped).
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/ulp_study.hpp"
#include "ieee/softfloat.hpp"
#include "posit/posit.hpp"

namespace {

using namespace pstab;

TEST(Report, FormatsNumbers) {
  EXPECT_EQ(core::fmt_sci(15700000000.0, 2), "1.57e+10");
  EXPECT_EQ(core::fmt_sci(std::nan(""), 2), "-");
  EXPECT_EQ(core::fmt_fix(3.14159, 2), "3.14");
  EXPECT_EQ(core::fmt_fix(std::nan(""), 1), "-");
  EXPECT_EQ(core::fmt_int(42), "42");
}

TEST(Report, ItersCellConvention) {
  EXPECT_EQ(core::fmt_iters(true, false, 7), "-");
  EXPECT_EQ(core::fmt_iters(false, true, 1234), "1000+");
  EXPECT_EQ(core::fmt_iters(false, false, 42), "42");
  EXPECT_EQ(core::fmt_iters(false, true, 0, 500), "500+");
}

TEST(Report, TableAlignsColumns) {
  core::Table t({"name", "val"});
  t.row({"a", "1.5"});
  t.row({"long-name", "22"});
  const auto s = t.str();
  // Header, separator, two rows.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Numeric cells right-align: "1.5" ends where "val" column ends.
  const auto lines = [&] {
    std::vector<std::string> v;
    std::size_t pos = 0;
    while (pos < s.size()) {
      const auto nl = s.find('\n', pos);
      v.push_back(s.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return v;
  }();
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].size(), lines[3].size());  // aligned rows
}

TEST(Report, CsvEscaping) {
  core::Table t({"a", "b"});
  t.row({"plain", "with,comma"});
  t.row({"quote\"inside", "x"});
  const auto c = t.csv();
  EXPECT_NE(c.find("a,b\n"), std::string::npos);
  EXPECT_NE(c.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(c.find("\"quote\"\"inside\",x\n"), std::string::npos);
}

TEST(Report, ShortRowsArePadded) {
  core::Table t({"a", "b", "c"});
  t.row({"only-one"});
  EXPECT_NE(t.str().find("only-one"), std::string::npos);  // no crash
}

TEST(UlpStudy, IeeeProfileIsFlat) {
  const auto rows = core::ulp_profile<float>(core::UlpOp::convert, -4, 4, 4000);
  for (const auto& r : rows) {
    EXPECT_GT(r.max_rel, 2e-8) << r.decade;   // eps/2 = 6e-8 ballpark
    EXPECT_LT(r.max_rel, 7e-8) << r.decade;
  }
}

TEST(UlpStudy, PositProfileIsVShaped) {
  const auto rows =
      core::ulp_profile<Posit32_2>(core::UlpOp::convert, -6, 6, 4000);
  // Minimum at decade 0; strictly worse 6 decades out on both sides.
  double at0 = 0, atm6 = 0, atp6 = 0;
  for (const auto& r : rows) {
    if (r.decade == 0) at0 = r.max_rel;
    if (r.decade == -6) atm6 = r.max_rel;
    if (r.decade == 6) atp6 = r.max_rel;
  }
  EXPECT_LT(at0, 8e-9);
  EXPECT_GT(atm6, 4 * at0);
  EXPECT_GT(atp6, 4 * at0);
}

TEST(UlpStudy, HalfOverflowShowsAsTotalLoss) {
  const auto r = core::ulp_study_decade<Half>(core::UlpOp::convert, -8, 4000);
  EXPECT_GT(r.max_rel, 0.5);  // flushed to zero: 100% relative error
}

TEST(UlpStudy, OperationsAtLeastAsNoisyAsConversion) {
  const auto conv =
      core::ulp_study_decade<Posit16_2>(core::UlpOp::convert, 0, 8000);
  const auto mul =
      core::ulp_study_decade<Posit16_2>(core::UlpOp::mul, 0, 8000);
  EXPECT_GE(mul.max_rel, 0.5 * conv.max_rel);
}

}  // namespace
