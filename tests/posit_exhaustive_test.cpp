// Exhaustive differential sweep of 8-bit posit arithmetic through BOTH
// execution paths (paper §IV-A, extended to the LUT fast path):
//   * all 256 x 256 operand pairs for add/sub/mul/div,
//   * all 256 patterns for sqrt/negate/reciprocal,
// for ES in {0, 1, 2}.  Each result is computed twice — once with the LUT
// routing disabled (scalar decode/round path) and once with it enabled
// (posit/lut.hpp tables) — and both must be bit-identical to each other and
// to the independent GMP oracle.  Labelled `slow` in CMake (ctest -L fast
// skips it); the rest of the suite is `fast`.
#include <gtest/gtest.h>

#include <cstdint>

#include "mp/mpreal.hpp"
#include "mp/oracle.hpp"
#include "posit/lut.hpp"
#include "posit/posit.hpp"

namespace {

using pstab::Posit;

/// Compute op(a, b) through the scalar path, then through the LUT path, and
/// check both against `want`.  The LUT hook is an atomic pointer, so
/// flipping it per evaluation is cheap (tables are built once).
template <int ES, class Op>
void check_both_paths(const char* what, std::uint32_t abits,
                      std::uint32_t bbits, const Op& op,
                      Posit<8, ES> want) {
  using P = Posit<8, ES>;
  const P a = P::from_bits(abits), b = P::from_bits(bbits);
  pstab::lut::disable<8, ES>();
  ASSERT_FALSE(P::lut_active());
  const P scalar = op(a, b);
  pstab::lut::enable<8, ES>();
  ASSERT_TRUE(P::lut_active());
  const P lut = op(a, b);
  ASSERT_EQ(scalar.bits(), lut.bits())
      << what << " " << abits << ", " << bbits << ": scalar "
      << scalar.to_double() << " != lut " << lut.to_double();
  ASSERT_EQ(scalar.bits(), want.bits())
      << what << " " << abits << ", " << bbits << " vs oracle";
}

template <int ES>
void sweep_binary() {
  using P = Posit<8, ES>;
  for (std::uint32_t a = 0; a < 256; ++a) {
    for (std::uint32_t b = 0; b < 256; ++b) {
      const P pa = P::from_bits(a), pb = P::from_bits(b);
      if (pa.is_nar() || pb.is_nar()) {
        // NaR rows are tabulated too: every op must propagate NaR on both
        // paths (the oracle handles reals only).
        check_both_paths<ES>("add", a, b, [](P x, P y) { return x + y; },
                             P::nar());
        check_both_paths<ES>("sub", a, b, [](P x, P y) { return x - y; },
                             P::nar());
        check_both_paths<ES>("mul", a, b, [](P x, P y) { return x * y; },
                             P::nar());
        check_both_paths<ES>("div", a, b, [](P x, P y) { return x / y; },
                             P::nar());
        continue;
      }
      const mpf_class xa = pstab::mp::to_mpf(pa), xb = pstab::mp::to_mpf(pb);

      const mpf_class sum = xa + xb;
      check_both_paths<ES>(
          "add", a, b, [](P x, P y) { return x + y; },
          sum == 0 ? P::zero() : pstab::mp::oracle_round<8, ES>(sum));

      const mpf_class dif = xa - xb;
      check_both_paths<ES>(
          "sub", a, b, [](P x, P y) { return x - y; },
          dif == 0 ? P::zero() : pstab::mp::oracle_round<8, ES>(dif));

      const mpf_class prd = xa * xb;
      check_both_paths<ES>(
          "mul", a, b, [](P x, P y) { return x * y; },
          prd == 0 ? P::zero() : pstab::mp::oracle_round<8, ES>(prd));

      P want_div = P::nar();  // x / 0 = NaR
      if (!pb.is_zero()) {
        const mpf_class quo = xa / xb;
        want_div = quo == 0 ? P::zero() : pstab::mp::oracle_round<8, ES>(quo);
      }
      check_both_paths<ES>("div", a, b, [](P x, P y) { return x / y; },
                           want_div);
    }
  }
}

template <int ES>
void sweep_unary() {
  using P = Posit<8, ES>;
  for (std::uint32_t a = 0; a < 256; ++a) {
    const P pa = P::from_bits(a);

    P want_sqrt = P::nar();
    if (pa.is_zero()) {
      want_sqrt = P::zero();
    } else if (!pa.is_nar() && !pa.is_negative()) {
      mpf_class root(0, pstab::mp::kPrecBits);
      mpf_sqrt(root.get_mpf_t(), pstab::mp::to_mpf(pa).get_mpf_t());
      want_sqrt = pstab::mp::oracle_round<8, ES>(root);
    }
    check_both_paths<ES>("sqrt", a, a,
                         [](P x, P) { return pstab::sqrt(x); }, want_sqrt);

    P want_recip = P::nar();  // 1/0 and 1/NaR
    if (!pa.is_zero() && !pa.is_nar()) {
      const mpf_class r = pstab::mp::make(1.0) / pstab::mp::to_mpf(pa);
      want_recip = pstab::mp::oracle_round<8, ES>(r);
    }
    check_both_paths<ES>("recip", a, a,
                         [](P x, P) { return pstab::reciprocal(x); },
                         want_recip);

    // Negation is not table-routed (two's complement beats a load), but the
    // sweep still pins its semantics under both routing states.
    P want_neg = P::nar();
    if (!pa.is_nar()) {
      const mpf_class n = -pstab::mp::to_mpf(pa);
      want_neg = n == 0 ? P::zero() : pstab::mp::oracle_round<8, ES>(n);
    }
    check_both_paths<ES>("neg", a, a, [](P x, P) { return -x; }, want_neg);
  }
}

TEST(PositExhaustiveBothPaths, BinaryOpsEs0) { sweep_binary<0>(); }
TEST(PositExhaustiveBothPaths, BinaryOpsEs1) { sweep_binary<1>(); }
TEST(PositExhaustiveBothPaths, BinaryOpsEs2) { sweep_binary<2>(); }
TEST(PositExhaustiveBothPaths, UnaryOpsEs0) { sweep_unary<0>(); }
TEST(PositExhaustiveBothPaths, UnaryOpsEs1) { sweep_unary<1>(); }
TEST(PositExhaustiveBothPaths, UnaryOpsEs2) { sweep_unary<2>(); }

/// The LUT result tables must literally BE the scalar results: compare every
/// table entry against a freshly computed scalar op.  This pins the builder
/// itself (a corrupted build that op routing then faithfully serves would
/// pass a routed-op comparison).
template <int ES>
void check_table_contents() {
  using P = Posit<8, ES>;
  const auto& t = pstab::lut::op_tables<8, ES>();
  pstab::lut::disable<8, ES>();
  for (std::uint32_t a = 0; a < 256; ++a) {
    const P pa = P::from_bits(a);
    ASSERT_EQ(t.sqrt[a], pstab::sqrt(pa).bits());
    ASSERT_EQ(t.recip[a], (P::one() / pa).bits());
    for (std::uint32_t b = 0; b < 256; ++b) {
      const P pb = P::from_bits(b);
      const std::size_t i = (a << 8) | b;
      ASSERT_EQ(t.add[i], (pa + pb).bits()) << a << "+" << b;
      ASSERT_EQ(t.sub[i], (pa - pb).bits()) << a << "-" << b;
      ASSERT_EQ(t.mul[i], (pa * pb).bits()) << a << "*" << b;
      ASSERT_EQ(t.div[i], (pa / pb).bits()) << a << "/" << b;
    }
  }
}

TEST(PositExhaustiveBothPaths, TableContentsMatchScalarEs0) {
  check_table_contents<0>();
}
TEST(PositExhaustiveBothPaths, TableContentsMatchScalarEs1) {
  check_table_contents<1>();
}
TEST(PositExhaustiveBothPaths, TableContentsMatchScalarEs2) {
  check_table_contents<2>();
}

}  // namespace
