// Mixed-precision iterative refinement tests (Algorithm 2 + Higham scaling):
// convergence to double accuracy, failure classification, and the
// paper-shape property that Higham scaling rescues matrices the naive cast
// destroys.
#include <gtest/gtest.h>

#include "ieee/softfloat.hpp"
#include "la/ir.hpp"
#include "matrices/generator.hpp"
#include "posit/posit.hpp"
#include "scaling/higham.hpp"

namespace {

using namespace pstab;

matrices::GeneratedMatrix nice_matrix() {
  matrices::MatrixSpec spec{"ir_nice", 50, 400, 5.0e2, 8.0, 1.0e2};
  return matrices::generate_spd(spec, 0);
}

TEST(MixedIr, ConvergesToDoubleAccuracy) {
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  const auto rep = la::mixed_ir<Half>(g.dense, b, x);
  ASSERT_EQ(rep.status, la::IrStatus::converged);
  EXPECT_LE(rep.final_berr, 4.5e-16);
  EXPECT_GT(rep.iterations, 0);
  EXPECT_LT(rep.iterations, 50);
  // Solution is the paper's xhat = ones/sqrt(n) to ~double accuracy.
  for (int i = 0; i < g.n; ++i)
    EXPECT_NEAR(x[i], 1.0 / std::sqrt(double(g.n)), 1e-10);
}

TEST(MixedIr, PositFactorizationAlsoConverges) {
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  EXPECT_EQ((la::mixed_ir<Posit16_1>(g.dense, b, x)).status,
            la::IrStatus::converged);
  EXPECT_EQ((la::mixed_ir<Posit16_2>(g.dense, b, x)).status,
            la::IrStatus::converged);
}

TEST(MixedIr, DoubleFactorizationConvergesInOneStep) {
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  const auto rep = la::mixed_ir<double>(g.dense, b, x);
  EXPECT_EQ(rep.status, la::IrStatus::converged);
  EXPECT_LE(rep.iterations, 2);
}

TEST(MixedIr, ReportsFactorizationFailure) {
  // Entries far beyond Float16's range clamp to 65504, destroying positive
  // definiteness (every entry becomes the same constant).
  matrices::MatrixSpec spec{"ir_huge", 40, 300, 1.0e6, 1.0e12, 1.0e3};
  const auto g = matrices::generate_spd(spec, 0);
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  const auto rep = la::mixed_ir<Half>(g.dense, b, x);
  EXPECT_TRUE(rep.status == la::IrStatus::factorization_failed ||
              rep.status == la::IrStatus::diverged);
}

TEST(MixedIr, HighamScalingRescuesOutOfRangeMatrix) {
  matrices::MatrixSpec spec{"ir_rescue", 40, 300, 1.0e4, 1.0e10, 1.0e2};
  const auto g = matrices::generate_spd(spec, 0);
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  // Naive: hopeless for Float16 (entries ~1e10).
  const auto naive = la::mixed_ir<Half>(g.dense, b, x);
  EXPECT_NE(naive.status, la::IrStatus::converged);
  // Higham-scaled: fine.
  la::Dense<double> Ah = g.dense;
  const auto hs = scaling::higham_scale(Ah, scaling::mu_ieee<Half>());
  la::IrOptions opt;
  const auto scaled = la::mixed_ir<Half>(g.dense, b, x, opt, &hs, &Ah);
  ASSERT_EQ(scaled.status, la::IrStatus::converged);
  EXPECT_LE(scaled.final_berr, 4.5e-16);
}

TEST(MixedIr, PositFactorErrorBeatsFloat16AfterScaling) {
  // The Fig 10(b) property on a single matrix: with Higham scaling the
  // posit(16,1) factorization backward error is smaller than Float16's.
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  la::IrOptions opt;

  la::Dense<double> Af = g.dense;
  const auto hf = scaling::higham_scale(Af, scaling::mu_ieee<Half>());
  const auto rf = la::mixed_ir<Half>(g.dense, b, x, opt, &hf, &Af);

  la::Dense<double> Ap = g.dense;
  const auto hp = scaling::higham_scale(Ap, scaling::mu_posit<16, 1>());
  const auto rp = la::mixed_ir<Posit16_1>(g.dense, b, x, opt, &hp, &Ap);

  ASSERT_EQ(rf.status, la::IrStatus::converged);
  ASSERT_EQ(rp.status, la::IrStatus::converged);
  EXPECT_LT(rp.factorization_error, rf.factorization_error);
  EXPECT_LE(rp.iterations, rf.iterations);
}

TEST(MixedIr, RefinementSolvesTheOriginalSystemUnderScaling) {
  // The scaled solve must still produce the solution of A x = b (not of the
  // scaled system) — this exercises the d = R z unscaling path.
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  la::Dense<double> Ah = g.dense;
  const auto hs = scaling::higham_scale(Ah, 16.0);
  la::IrOptions opt;
  const auto rep = la::mixed_ir<Posit16_2>(g.dense, b, x, opt, &hs, &Ah);
  ASSERT_EQ(rep.status, la::IrStatus::converged);
  const auto r = la::residual(g.dense, b, x);
  EXPECT_LT(la::kernels::norm_inf_d(r) / la::kernels::norm_inf_d(b), 1e-13);
}

TEST(MixedIr, GarbageFactorizationDetectedAsDiverged) {
  // Ah_source pointing at a *different* SPD matrix: Cholesky succeeds
  // (CholStatus::ok) but the factor carries no information about A, so the
  // first refinement step leaves berr at ~1 and refinement cannot contract.
  // The old guard recorded first_berr before testing it, so this inert case
  // silently ran the whole max_iter budget and was reported max_iterations;
  // it must trip `diverged` on the first step.
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Dense<double> wrong(g.n, g.n);
  for (int i = 0; i < g.n; ++i) wrong(i, i) = 65536.0;
  la::Vec<double> x;
  la::IrOptions opt;
  opt.record_history = true;
  const auto rep = la::mixed_ir<double>(g.dense, b, x, opt, nullptr, &wrong);
  EXPECT_EQ(rep.chol_status, la::CholStatus::ok);
  EXPECT_EQ(rep.status, la::IrStatus::diverged);
  EXPECT_EQ(rep.iterations, 1) << "inert first step must be caught at once";
  ASSERT_EQ(rep.history.size(), 1u);
  EXPECT_GT(rep.history.back(), 0.9);
  EXPECT_EQ(rep.history.back(), rep.final_berr);
}

TEST(MixedIr, DivergenceGuardDoesNotMisfireOnSlowStart) {
  // A legitimate low-precision factorization whose first step already
  // contracts (berr well under the 0.9 inertness threshold) must be allowed
  // to keep refining to convergence.
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  la::IrOptions opt;
  opt.record_history = true;
  const auto rep = la::mixed_ir<Half>(g.dense, b, x, opt);
  ASSERT_EQ(rep.status, la::IrStatus::converged);
  ASSERT_FALSE(rep.history.empty());
  EXPECT_LT(rep.history.front(), 0.9);
}

TEST(MixedIr, IterationCapReported) {
  const auto g = nice_matrix();
  const auto b = matrices::paper_rhs(g.dense);
  la::Vec<double> x;
  la::IrOptions opt;
  opt.max_iter = 1;  // force the cap on a format that needs a few steps
  const auto rep = la::mixed_ir<Fp8e5m2>(g.dense, b, x, opt);
  EXPECT_TRUE(rep.status == la::IrStatus::max_iterations ||
              rep.status == la::IrStatus::diverged ||
              rep.status == la::IrStatus::factorization_failed);
}

}  // namespace
