// Edge-semantics tests across the formats: IEEE special values in the soft
// floats, NaR in quire products for 8-bit posits (exhaustive vs GMP), CSR
// scaling/cast coherence, and the integer construction paths.
#include <gtest/gtest.h>

#include "ieee/softfloat.hpp"
#include "la/csr.hpp"
#include "mp/mpreal.hpp"
#include "mp/oracle.hpp"
#include "posit/posit.hpp"
#include "posit/quire.hpp"

namespace {

using namespace pstab;

TEST(SoftFloatEdge, SqrtSpecials) {
  EXPECT_TRUE(pstab::sqrt(Half(-4.0)).is_nan());
  EXPECT_EQ(pstab::sqrt(Half(0.0)).bits(), 0u);
  EXPECT_TRUE(pstab::sqrt(Half::infinity()).is_inf());
  EXPECT_TRUE(pstab::sqrt(Half::quiet_nan()).is_nan());
}

TEST(SoftFloatEdge, InfArithmetic) {
  const Half inf = Half::infinity();
  EXPECT_TRUE((inf + Half(1.0)).is_inf());
  EXPECT_TRUE((inf - inf).is_nan());
  EXPECT_TRUE((Half(0.0) * inf).is_nan());
  EXPECT_TRUE((Half(1.0) / Half(0.0)).is_inf());
  EXPECT_TRUE((Half(1.0) / -Half(0.0)).sign());  // -inf
  EXPECT_EQ((Half(1.0) / inf).to_double(), 0.0);
}

TEST(SoftFloatEdge, Fp8ExhaustiveRoundTrip) {
  for (std::uint32_t b = 0; b < 256; ++b) {
    const Fp8e5m2 f = Fp8e5m2::from_bits(b);
    if (f.is_nan()) continue;
    EXPECT_EQ(Fp8e5m2::from_double(f.to_double()).bits(), b) << b;
  }
}

TEST(SoftFloatEdge, Fp8ExhaustiveOpsMatchDoubleRounding) {
  // For every pair: op in double rounded once must equal the soft op
  // (definitionally true given the implementation, but this pins the
  // conversion paths at a width where we can afford exhaustion).
  for (std::uint32_t a = 0; a < 256; ++a) {
    for (std::uint32_t b = 0; b < 256; ++b) {
      const Fp8e5m2 fa = Fp8e5m2::from_bits(a), fb = Fp8e5m2::from_bits(b);
      if (fa.is_nan() || fb.is_nan()) continue;
      const auto want =
          Fp8e5m2::from_double(fa.to_double() * fb.to_double());
      const auto got = fa * fb;
      if (want.is_nan()) {
        EXPECT_TRUE(got.is_nan());
      } else {
        EXPECT_EQ(got.bits(), want.bits()) << a << "*" << b;
      }
    }
  }
}

TEST(Posit8Quire, ExhaustiveSingleProductsVsGmp) {
  using P = Posit<8, 1>;
  for (std::uint32_t a = 0; a < 256; ++a) {
    for (std::uint32_t b = 0; b < 256; ++b) {
      const P pa = P::from_bits(a), pb = P::from_bits(b);
      if (pa.is_nar() || pb.is_nar()) continue;
      Quire<8, 1> q;
      q.add_product(pa, pb);
      const mpf_class exact = mp::to_mpf(pa) * mp::to_mpf(pb);
      const P want =
          exact == 0 ? P::zero() : mp::oracle_round<8, 1>(exact);
      ASSERT_EQ(q.to_posit().bits(), want.bits()) << a << " " << b;
    }
  }
}

TEST(Posit8Quire, TwoProductAccumulationVsGmp) {
  using P = Posit<8, 0>;
  // Structured sweep: (a*b + c*d) for a dense sample of quadruples.
  for (std::uint32_t a = 1; a < 256; a += 5) {
    for (std::uint32_t b = 1; b < 256; b += 7) {
      for (std::uint32_t c = 1; c < 256; c += 11) {
        const std::uint32_t d = (a * 13 + b * 7 + c) % 256;
        const P pa = P::from_bits(a), pb = P::from_bits(b);
        const P pc = P::from_bits(c), pd = P::from_bits(d);
        if (pa.is_nar() || pb.is_nar() || pc.is_nar() || pd.is_nar())
          continue;
        Quire<8, 0> q;
        q.add_product(pa, pb);
        q.add_product(pc, pd);
        const mpf_class exact = mp::to_mpf(pa) * mp::to_mpf(pb) +
                                mp::to_mpf(pc) * mp::to_mpf(pd);
        const P want =
            exact == 0 ? P::zero() : mp::oracle_round<8, 0>(exact);
        ASSERT_EQ(q.to_posit().bits(), want.bits())
            << a << " " << b << " " << c << " " << d;
      }
    }
  }
}

TEST(PositEdge, IntConstruction) {
  EXPECT_EQ(Posit32_2(7).to_double(), 7.0);
  EXPECT_EQ(Posit32_2(-3).to_double(), -3.0);
  EXPECT_EQ(Posit32_2(0).bits(), 0u);
  EXPECT_EQ(Posit16_2(1000).to_double(), 1000.0);
}

TEST(PositEdge, IsNegativeAndSignedPattern) {
  EXPECT_TRUE(Posit32_2(-1).is_negative());
  EXPECT_FALSE(Posit32_2(1).is_negative());
  EXPECT_FALSE(Posit32_2::zero().is_negative());
  EXPECT_FALSE(Posit32_2::nar().is_negative());  // NaR is not a sign
  EXPECT_LT(Posit32_2::nar().signed_pattern(), Posit32_2(-1).signed_pattern());
}

TEST(CsrEdge, ScaleValuesAffectsCastsToo) {
  auto m = la::Csr<double>::from_triplets(2, 2, {{0, 0, 2.0}, {1, 1, 4.0}});
  m.scale_values(0.5);
  const auto d = m.to_dense();
  EXPECT_EQ(d(0, 0), 1.0);
  EXPECT_EQ(d(1, 1), 2.0);
  // Cast sees the scaled values (vals_d_ kept in sync).
  const auto mp = m.cast<Posit16_2>();
  EXPECT_EQ(mp.to_dense()(0, 0).to_double(), 1.0);
}

TEST(CsrEdge, EmptyRowsAndColumns) {
  auto m = la::Csr<double>::from_triplets(3, 3, {{1, 1, 5.0}});
  la::Vec<double> y;
  m.spmv({1.0, 2.0, 3.0}, y);
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[1], 10.0);
  EXPECT_EQ(y[2], 0.0);
}

}  // namespace
