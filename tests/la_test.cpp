// Linear-algebra substrate tests: kernels, Cholesky, triangular solves, CG,
// and BiCGSTAB, in double (exactness/correctness) and in the soft formats
// (behavioural sanity).
#include <gtest/gtest.h>

#include <random>

#include "ieee/softfloat.hpp"
#include "la/bicgstab.hpp"
#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/csr.hpp"
#include "la/dense.hpp"
#include "la/kernels/kernels.hpp"
#include "la/norms.hpp"
#include "posit/posit.hpp"

namespace {

using namespace pstab;
using la::Csr;
using la::Dense;
using la::Vec;

Dense<double> random_spd(int n, double shift, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> g;
  Dense<double> B(n, n);
  for (auto& v : B.data()) v = g(rng);
  Dense<double> A(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double s = 0;
      for (int k = 0; k < n; ++k) s += B(k, i) * B(k, j);
      A(i, j) = s + (i == j ? shift : 0.0);
    }
  return A;
}

TEST(VectorOps, DotAxpyNrm2) {
  Vec<double> x{1, 2, 3}, y{4, 5, 6};
  EXPECT_EQ(la::kernels::dot(la::kernels::Context{}, x, y), 32.0);
  la::kernels::axpy(la::kernels::Context{}, 2.0, x, y);
  EXPECT_EQ(y[0], 6.0);
  EXPECT_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(la::kernels::nrm2_d(x), std::sqrt(14.0));
  EXPECT_EQ(la::kernels::norm_inf_d(y), 12.0);
}

TEST(VectorOps, ClampedCast) {
  Vec<double> x{1.0, 1e9, -1e9, 1e-30, 0.0};
  const auto h = la::kernels::from_double_clamped<Half>(x);
  EXPECT_EQ(h[0].to_double(), 1.0);
  EXPECT_EQ(h[1].to_double(), 65504.0);   // clamped, not inf
  EXPECT_EQ(h[2].to_double(), -65504.0);
  EXPECT_EQ(h[3].to_double(), 0.0);       // underflow to zero (IEEE)
  const auto p = la::kernels::from_double_clamped<Posit16_2>(x);
  EXPECT_GT(p[3].to_double(), 0.0);       // posit never underflows to zero
}

TEST(DenseMatrix, GemvAndIdentity) {
  auto I = Dense<double>::identity(3);
  Vec<double> x{1, 2, 3};
  EXPECT_EQ(I * x, x);
  Dense<double> A(2, 3);
  A(0, 0) = 1;
  A(0, 2) = 2;
  A(1, 1) = -1;
  const auto y = A * x;
  EXPECT_EQ(y[0], 7.0);
  EXPECT_EQ(y[1], -2.0);
}

TEST(CsrMatrix, MatchesDense) {
  std::mt19937 rng(3);
  Dense<double> A(20, 20);
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j)
      if (rng() % 4 == 0) A(i, j) = double(int(rng() % 19)) - 9.0;
  const auto S = Csr<double>::from_dense(A);
  Vec<double> x(20);
  for (auto& v : x) v = double(int(rng() % 7)) - 3.0;
  const auto yd = A * x;
  const auto ys = S * x;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(yd[i], ys[i]) << i;
  // Round-trip through dense.
  const auto D2 = S.to_dense();
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j) EXPECT_EQ(D2(i, j), A(i, j));
}

TEST(CsrMatrix, TripletsSumDuplicates) {
  auto m = Csr<double>::from_triplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.0},
                                             {1, 1, 5.0}});
  EXPECT_EQ(m.nnz(), 2u);
  const auto d = m.to_dense();
  EXPECT_EQ(d(0, 0), 3.0);
  EXPECT_EQ(d(1, 1), 5.0);
}

TEST(Cholesky, ReconstructsKnownFactor) {
  // A = R^T R with R = [[2,1],[0,3]] -> A = [[4,2],[2,10]].
  Dense<double> A(2, 2);
  A(0, 0) = 4;
  A(0, 1) = 2;
  A(1, 0) = 2;
  A(1, 1) = 10;
  const auto f = la::cholesky(A);
  ASSERT_EQ(f.status, la::CholStatus::ok);
  EXPECT_DOUBLE_EQ(f.R(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(f.R(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(f.R(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(f.R(1, 0), 0.0);
}

TEST(Cholesky, DetectsIndefinite) {
  Dense<double> A(2, 2);
  A(0, 0) = 1;
  A(0, 1) = 4;
  A(1, 0) = 4;
  A(1, 1) = 1;  // eigenvalues 5, -3
  const auto f = la::cholesky(A);
  EXPECT_EQ(f.status, la::CholStatus::not_positive_definite);
  EXPECT_EQ(f.failed_column, 1);
}

TEST(Cholesky, SolveRecoversSolution) {
  const auto A = random_spd(40, 1.0, 7);
  Vec<double> xtrue(40);
  std::mt19937 rng(8);
  for (auto& v : xtrue) v = std::normal_distribution<double>()(rng);
  const auto b = A * xtrue;
  const auto x = la::cholesky_solve(A, b);
  ASSERT_TRUE(x.has_value());
  for (int i = 0; i < 40; ++i) EXPECT_NEAR((*x)[i], xtrue[i], 1e-8);
}

TEST(Cholesky, BackwardErrorSmallInDouble) {
  const auto A = random_spd(30, 0.5, 9);
  const auto f = la::cholesky(A);
  ASSERT_EQ(f.status, la::CholStatus::ok);
  EXPECT_LT(la::factorization_backward_error(A, f.R), 1e-13);
}

TEST(TriangularSolves, ForwardBackward) {
  Dense<double> R(3, 3);
  R(0, 0) = 2;
  R(0, 1) = 1;
  R(0, 2) = -1;
  R(1, 1) = 4;
  R(1, 2) = 0.5;
  R(2, 2) = 5;
  Vec<double> x{1, -2, 3};
  // y = R x, then solve R x' = y.
  Vec<double> y(3);
  for (int i = 0; i < 3; ++i) {
    y[i] = 0;
    for (int j = i; j < 3; ++j) y[i] += R(i, j) * x[j];
  }
  const auto xs = la::solve_upper(R, y);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(xs[i], x[i], 1e-14);
  // z = R^T x, then solve R^T x' = z.
  Vec<double> z(3, 0.0);
  for (int i = 0; i < 3; ++i)
    for (int j = i; j < 3; ++j) z[j] += R(i, j) * x[i];
  const auto xt = la::solve_lower_rt(R, z);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(xt[i], x[i], 1e-14);
}

TEST(Norms, KnownValues) {
  Dense<double> A(2, 2);
  A(0, 0) = 1;
  A(0, 1) = -3;
  A(1, 0) = 2;
  A(1, 1) = 1;
  EXPECT_EQ(la::kernels::norm_inf(A), 4.0);
  EXPECT_DOUBLE_EQ(la::kernels::norm_frob(A), std::sqrt(15.0));
  const auto S = Csr<double>::from_dense(A);
  EXPECT_EQ(la::kernels::norm_inf(S), 4.0);
}

TEST(Norms, PowerIterationFindsTopEigenvalue) {
  // Diagonal matrix: norm2 is the max |diagonal|.
  Dense<double> A(5, 5);
  const double d[5] = {0.1, 2.0, -7.5, 3.0, 1.0};
  for (int i = 0; i < 5; ++i) A(i, i) = d[i];
  EXPECT_NEAR(la::kernels::norm2_est(A), 7.5, 1e-6);
}

TEST(Cg, SolvesInDouble) {
  const auto A = random_spd(60, 5.0, 11);
  const auto S = Csr<double>::from_dense(A);
  Vec<double> xtrue(60, 1.0 / std::sqrt(60.0));
  const auto b = A * xtrue;
  Vec<double> x;
  la::CgOptions opt;
  opt.tol = 1e-10;
  const auto rep = la::cg_solve(S, b, x, opt);
  EXPECT_EQ(rep.status, la::CgStatus::converged);
  EXPECT_LT(rep.iterations, 200);
  const auto r = la::residual(A, b, x);
  EXPECT_LT(la::kernels::nrm2_d(r) / la::kernels::nrm2_d(b), 1e-9);
}

TEST(Cg, Posit32SolvesWellScaledSystem) {
  using P = Posit32_2;
  const auto A = random_spd(40, 4.0, 13);
  const auto S = Csr<double>::from_dense(A);
  Vec<double> xtrue(40, 1.0 / std::sqrt(40.0));
  const auto b = A * xtrue;
  const auto Sp = S.cast<P>();
  const auto bp = la::kernels::from_double_vec<P>(b);
  Vec<P> xp;
  const auto rep = la::cg_solve(Sp, bp, xp);
  EXPECT_EQ(rep.status, la::CgStatus::converged);
  // True residual in double must honour the 1e-5 criterion roughly.
  const auto xd = la::kernels::to_double_vec(xp);
  const auto r = la::residual(A, b, xd);
  EXPECT_LT(la::kernels::nrm2_d(r) / la::kernels::nrm2_d(b), 5e-5);
}

TEST(Cg, ReportsBreakdownOnIndefinite) {
  // Indefinite with <p0, A p0> = 0: CG must flag the breakdown.
  Dense<double> A(2, 2);
  A(0, 0) = 1;
  A(1, 1) = -1;
  const auto S = Csr<double>::from_dense(A);
  Vec<double> b{1, 1}, x;
  la::CgOptions opt;
  opt.max_iter = 50;
  const auto rep = la::cg_solve(S, b, x, opt);
  EXPECT_EQ(rep.status, la::CgStatus::breakdown);
}

TEST(Cg, FusedDotsConvergeAtLeastAsFast) {
  using P = Posit16_2;
  const auto A = random_spd(30, 3.0, 17);
  const auto S = Csr<double>::from_dense(A).cast<P>();
  Vec<double> xtrue(30, 1.0 / std::sqrt(30.0));
  const auto b = la::kernels::from_double_vec<P>(
      la::kernels::to_double_vec(S * la::kernels::from_double_vec<P>(xtrue)));
  Vec<P> x1, x2;
  la::CgOptions plain, fused;
  plain.max_iter = fused.max_iter = 2000;
  fused.fused_dots = true;
  const auto r1 = la::cg_solve(S, b, x1, plain);
  const auto r2 = la::cg_solve(S, b, x2, fused);
  ASSERT_EQ(r2.status, la::CgStatus::converged);
  if (r1.status == la::CgStatus::converged) {
    EXPECT_LE(r2.iterations, r1.iterations + 5);
  }
}

TEST(Bicgstab, SolvesInDouble) {
  const auto A = random_spd(50, 5.0, 19);
  const auto S = Csr<double>::from_dense(A);
  Vec<double> xtrue(50, 0.3);
  const auto b = A * xtrue;
  Vec<double> x;
  const auto rep = la::bicgstab_solve(S, b, x, 1e-9, 2000);
  EXPECT_TRUE(rep.converged());
  const auto r = la::residual(A, b, x);
  EXPECT_LT(la::kernels::nrm2_d(r) / la::kernels::nrm2_d(b), 1e-8);
  EXPECT_GT(rep.iterate_log_range, 0.0);
}

TEST(FusedDot, QuireExactness) {
  using P = Posit32_2;
  // Ill-conditioned dot: fused (quire) recovers it, plain loses digits.
  Vec<P> x{P::from_double(1e15), P::from_double(3.0), P::from_double(-1e15)};
  Vec<P> y{P::from_double(1.0), P::from_double(1.0), P::from_double(1.0)};
  EXPECT_EQ(la::kernels::dot_fused(la::kernels::Context{}, x, y).to_double(), 3.0);
}

}  // namespace
