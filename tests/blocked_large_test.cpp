// Large-n tier smoke (ctest -L slow): the synth10k sparse generator, CG on
// an order-10^4 system, blocked-vs-unblocked factor identity at sizes where
// every parallel gate in la/blocked.hpp actually opens, and byte-identical
// artifacts across PSTAB_THREADS settings.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>

#include "la/blocked.hpp"
#include "la/cg.hpp"
#include "la/cholesky.hpp"
#include "la/csr.hpp"
#include "la/lu.hpp"
#include "matrices/generator.hpp"
#include "matrices/suite.hpp"
#include "posit/posit.hpp"

namespace {

using namespace pstab;
using la::Dense;
using la::Vec;

struct ThreadsGuard {
  ThreadsGuard(const char* v) { setenv("PSTAB_THREADS", v, 1); }
  ~ThreadsGuard() { unsetenv("PSTAB_THREADS"); }
};

template <class T>
bool bits_equal(const Vec<T>& a, const Vec<T>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

template <class T>
bool bits_equal(const Dense<T>& a, const Dense<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.data().empty() ||
          std::memcmp(a.data().data(), b.data().data(),
                      a.data().size() * sizeof(T)) == 0);
}

template <class T>
Dense<T> rand_spd(int n, unsigned seed) {
  // Diagonally dominant symmetric: cheap to build at n ~ 10^3 (no O(n^3)
  // Gram product) and positive definite by Gershgorin.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Dense<T> A(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= i; ++j) {
      const double v = (i == j) ? 2.0 * n : dist(rng);
      A(i, j) = A(j, i) = scalar_traits<T>::from_double(v);
    }
  return A;
}

TEST(LargeTier, Synth10kSparseGenerationMatchesSpec) {
  const auto spec = matrices::find_spec("synth10k");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->sparse_only);
  const auto g = matrices::generate_spd_sparse(*spec);
  EXPECT_EQ(g.n, 10000);
  EXPECT_EQ(g.dense.rows(), 0);  // never densified: 10^4 dense is 800 MB
  // Published nnz hit within the band construction's boundary slack.
  EXPECT_NEAR(double(g.csr.nnz()), double(spec->nnz), 0.01 * spec->nnz);
  EXPECT_GT(g.lambda_min, 0.0);
  EXPECT_GT(g.lambda_max, g.lambda_min);
}

TEST(LargeTier, CgConvergesOnSynth10k) {
  const auto g =
      matrices::generate_spd_sparse(*matrices::find_spec("synth10k"));
  const auto b = matrices::paper_rhs(g.csr);
  Vec<double> x;
  la::CgOptions opt;
  const auto rep = la::cg_solve(g.csr, b, x, opt);
  EXPECT_EQ(rep.status, la::SolveStatus::converged);
  EXPECT_LE(rep.final_relres, opt.tol);
  // The paper RHS encodes x = (1/sqrt(n), ...): the solve must recover it.
  EXPECT_NEAR(x[0], 1.0 / 100.0, 1e-4);
}

TEST(LargeTier, CgOnSynth10kByteIdenticalAcrossThreadCounts) {
  const auto g =
      matrices::generate_spd_sparse(*matrices::find_spec("synth10k"));
  const auto b = matrices::paper_rhs(g.csr);
  Vec<double> x1, x8;
  la::CgReport r1, r8;
  {
    ThreadsGuard t("1");
    r1 = la::cg_solve(g.csr, b, x1);
  }
  {
    ThreadsGuard t("8");
    r8 = la::cg_solve(g.csr, b, x8);
  }
  EXPECT_TRUE(bits_equal(x1, x8));
  EXPECT_EQ(r1.iterations, r8.iterations);
  EXPECT_EQ(r1.final_relres, r8.final_relres);
}

TEST(LargeTier, SpmvByteIdenticalAcrossThreadCountsAtTenK) {
  const auto g =
      matrices::generate_spd_sparse(*matrices::find_spec("synth10k"));
  Vec<double> x(g.n);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& v : x) v = dist(rng);
  Vec<double> ref;
  {
    ThreadsGuard t("1");
    g.csr.spmv(x, ref);
  }
  for (const char* threads : {"2", "8", "32"}) {
    ThreadsGuard t(threads);
    Vec<double> y;
    g.csr.spmv(x, y);
    EXPECT_TRUE(bits_equal(ref, y)) << "PSTAB_THREADS=" << threads;
  }
}

TEST(LargeTier, BlockedIdenticalToUnblockedAtScaleDouble) {
  // n = 1024: panel sweeps and trailing updates all cross their parallel
  // thresholds, several panels deep.
  const int n = 1024;
  const auto A = rand_spd<double>(n, 61);
  const auto u = la::cholesky_unblocked(A);
  ASSERT_EQ(u.status, la::CholStatus::ok);
  for (int block : {64, 128, 200}) {
    const auto bres = la::cholesky_blocked(A, nullptr, {}, nullptr, block);
    ASSERT_EQ(bres.status, la::CholStatus::ok);
    EXPECT_TRUE(bits_equal(u.R, bres.R)) << "block=" << block;
  }
  std::mt19937_64 rng(62);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Dense<double> G(n, n);
  for (auto& v : G.data()) v = dist(rng);
  const auto lu = la::lu_factor_unblocked(G);
  ASSERT_EQ(lu.status, la::LuStatus::ok);
  for (int block : {64, 128}) {
    const auto lb = la::lu_factor_blocked(G, {}, block);
    ASSERT_EQ(lb.status, la::LuStatus::ok);
    EXPECT_EQ(lu.perm, lb.perm);
    EXPECT_TRUE(bits_equal(lu.lu, lb.lu)) << "block=" << block;
  }
}

TEST(LargeTier, BlockedIdenticalToUnblockedAtScalePosit) {
  const int n = 320;
  const auto A = rand_spd<Posit16_1>(n, 63);
  const auto u = la::cholesky_unblocked(A);
  ASSERT_EQ(u.status, la::CholStatus::ok);
  const auto b = la::cholesky_blocked(A, nullptr, {}, nullptr, 96);
  ASSERT_EQ(b.status, la::CholStatus::ok);
  EXPECT_TRUE(bits_equal(u.R, b.R));
}

TEST(LargeTier, LargeSizeCapShrinksTheTier) {
  // PSTAB_LARGE_SIZE_CAP caps the large tier only (CI boxes); per-row
  // density is preserved, like PSTAB_SIZE_CAP for the Table I suite.
  setenv("PSTAB_LARGE_SIZE_CAP", "500", 1);
  EXPECT_EQ(matrices::large_size_cap(), 500);
  const auto g = matrices::generate_spd_sparse(
      *matrices::find_spec("synth10k"), matrices::large_size_cap());
  unsetenv("PSTAB_LARGE_SIZE_CAP");
  EXPECT_EQ(g.n, 500);
  EXPECT_EQ(g.dense.rows(), 0);
  EXPECT_GT(g.lambda_min, 0.0);
}

}  // namespace
