#!/usr/bin/env sh
# Build and run the differential-fuzzing matrix: a plain tree plus one tree
# per sanitizer preset, each running the fuzz-labelled ctest suite (corpus
# replay + determinism + short differential sweeps) and a pstab-fuzz budget
# across every arithmetic surface.
#
#   tools/run_fuzz.sh [cases] [seed]      default: 2000000 cases, seed 1
#
# Env:
#   PSTAB_FUZZ_SAN    space-separated sanitizer presets to run in addition
#                     to the plain build (default: "address undefined thread";
#                     set to "" to skip sanitizer trees)
#   PSTAB_FUZZ_DIR    scratch prefix for build trees (default: build-fuzz)
#
# Exit status is nonzero if any build, test, or fuzz budget fails; new
# minimized failure records are appended under tests/corpus/ so a red run
# leaves behind the replayable evidence.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cases=${1:-2000000}
seed=${2:-1}
prefix=${PSTAB_FUZZ_DIR:-"$repo_root/build-fuzz"}
sans=${PSTAB_FUZZ_SAN-"address undefined thread"}

run_tree() {
  san=$1
  if [ -n "$san" ]; then
    dir="$prefix-$san"
    echo "== configure ($san sanitizer) =="
    cmake -S "$repo_root" -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPSTAB_SAN="$san"
  else
    dir="$prefix"
    echo "== configure (plain) =="
    cmake -S "$repo_root" -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  cmake --build "$dir" -j"$(nproc 2>/dev/null || echo 1)" \
    --target pstab_cli fuzz_corpus_test

  echo "== ctest -L fuzz (${san:-plain}) =="
  (cd "$dir" && ctest -L fuzz --output-on-failure)

  echo "== pstab fuzz --seed $seed --cases $cases (${san:-plain}) =="
  "$dir/tools/pstab" fuzz --seed "$seed" --cases "$cases" \
    --corpus "$repo_root/tests/corpus"
}

run_tree ""
for san in $sans; do
  run_tree "$san"
done

echo "fuzz matrix complete: plain ${sans:++ $sans}"
