#!/usr/bin/env python3
"""Validate pstab-results-v1 JSON artifacts (RESULTS_*.json).

Usage: check_results_schema.py FILE [FILE...]
       check_results_schema.py --serve-responses FILE [FILE...]

Default mode checks the envelope every emitter in src/core/report_json.cpp
promises: schema tag, experiment name, an options object, a rows array whose
entries carry a matrix name plus per-format cells, and a telemetry array of
per-format counter objects.  --serve-responses instead validates JSONL files
of pstab-serve-v1 response envelopes (`pstab serve --script` / serve-client
output).  Exits nonzero on the first malformed file.
"""
import json
import sys

SCHEMA = "pstab-results-v1"
SERVE_SCHEMA = "pstab-serve-v1"
SOLVE_STATUSES = {
    "converged", "max_iterations", "breakdown", "not_positive_definite",
    "arithmetic_error", "factorization_failed", "diverged",
    "deadline_exceeded",
}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_solve_report(path, cell, where):
    for key in ("status", "iterations", "final_relres", "true_relres"):
        if key not in cell:
            fail(path, f"{where}: missing '{key}'")
    if cell["status"] not in SOLVE_STATUSES:
        fail(path, f"{where}: unknown status {cell['status']!r}")
    if not isinstance(cell["iterations"], int):
        fail(path, f"{where}: iterations must be an integer")


def check_telemetry(path, entries):
    if not isinstance(entries, list):
        fail(path, "'telemetry' must be an array")
    for i, t in enumerate(entries):
        where = f"telemetry[{i}]"
        for key in ("format", "events", "regime_hist"):
            if key not in t:
                fail(path, f"{where}: missing '{key}'")
        if not isinstance(t["events"], dict):
            fail(path, f"{where}: events must be an object")
        for name, count in t["events"].items():
            if not isinstance(count, int) or count < 0:
                fail(path, f"{where}: event {name!r} count must be a "
                           f"non-negative integer")
        if not all(isinstance(c, int) and c >= 0 for c in t["regime_hist"]):
            fail(path, f"{where}: regime_hist must hold non-negative integers")


LU_STATUSES = {"ok", "singular", "arithmetic_error"}


def check_lu_ir_report(path, cell, where):
    """One LU-IR / GMRES-IR refinement report (report_json.cpp lu_ir_cell):
    the general-systems analogue of check_solve_report."""
    if not isinstance(cell, dict):
        fail(path, f"{where}: must be an object")
    for key in ("status", "iterations", "final_berr", "factorization_error",
                "lu_status", "inner_iterations"):
        if key not in cell:
            fail(path, f"{where}: missing '{key}'")
    if cell["status"] not in SOLVE_STATUSES:
        fail(path, f"{where}: unknown status {cell['status']!r}")
    if cell["lu_status"] not in LU_STATUSES:
        fail(path, f"{where}: unknown lu_status {cell['lu_status']!r}")
    for key in ("iterations", "inner_iterations"):
        if not isinstance(cell[key], int) or cell[key] < 0:
            fail(path, f"{where}: {key} must be a non-negative integer")


def check_refinement_precision(path, doc):
    """Refinement artifacts carry the resolved (u_f, u, u_r) triple."""
    prec = doc["options"].get("precision")
    if not isinstance(prec, dict):
        fail(path, "options: missing precision object")
    for key in ("factor", "working", "residual"):
        if not isinstance(prec.get(key), str) or not prec[key]:
            fail(path, f"options.precision: missing '{key}'")
    if prec["residual"] == "auto":
        fail(path, "options.precision: residual must be resolved, not 'auto'")


FAULT_OUTCOMES = ("masked", "corrected", "detected", "sdc", "hang")
FAULT_SITES = {"matrix_entry", "vector_entry", "dot_result"}
FAULT_FIELDS = {"any", "sign", "regime", "exponent", "fraction"}


def check_fault_campaign(path, doc):
    """Fault-injection campaign artifact (src/resilience/campaign.cpp):
    per-format clean baselines plus one cell per (format, site, bit-field)
    with outcome counts, and a determinism digest over all trial records."""
    if not isinstance(doc.get("options"), dict):
        fail(path, "missing options object")
    for key in ("seed", "solver", "trials", "recovery"):
        if key not in doc["options"]:
            fail(path, f"options: missing '{key}'")
    clean = doc.get("clean")
    if not isinstance(clean, list) or not clean:
        fail(path, "clean must be a non-empty array")
    for i, c in enumerate(clean):
        if not isinstance(c.get("format"), str):
            fail(path, f"clean[{i}]: missing format")
        if c.get("status") not in SOLVE_STATUSES:
            fail(path, f"clean[{i}]: unknown status {c.get('status')!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail(path, "cells must be a non-empty array")
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell.get("format"), str):
            fail(path, f"{where}: missing format")
        if cell.get("site") not in FAULT_SITES:
            fail(path, f"{where}: unknown site {cell.get('site')!r}")
        if cell.get("field") not in FAULT_FIELDS:
            fail(path, f"{where}: unknown field {cell.get('field')!r}")
        trials = cell.get("trials")
        if not isinstance(trials, int) or trials <= 0:
            fail(path, f"{where}: trials must be a positive integer")
        total = 0
        for o in FAULT_OUTCOMES:
            count = cell.get(o)
            if not isinstance(count, int) or count < 0:
                fail(path, f"{where}: outcome {o!r} must be a non-negative "
                           f"integer")
            total += count
        if total != trials:
            fail(path, f"{where}: outcome counts sum to {total}, "
                       f"expected {trials}")
    if not isinstance(doc.get("digest"), int):
        fail(path, "missing determinism digest")


def check_file(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")
    if doc.get("schema") != SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    experiment = doc.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        fail(path, "missing experiment name")
    if experiment == "fault_campaign":
        check_fault_campaign(path, doc)
    elif experiment != "telemetry":
        if not isinstance(doc.get("options"), dict):
            fail(path, "missing options object")
        rows = doc.get("rows")
        if not isinstance(rows, list) or not rows:
            fail(path, "rows must be a non-empty array")
        for i, row in enumerate(rows):
            if experiment == "kernels":
                # Backend micro-benchmark rows (core/kernels_bench.cpp):
                # no matrix, one row per (kernel, format) pair.  The options
                # object must name the vector ISA the simd column ran on.
                isa = doc["options"].get("simd_isa")
                if isa not in ("scalar", "avx2", "avx512", "neon"):
                    fail(path, f"options: unknown simd_isa {isa!r}")
                for key in ("kernel", "format", "n", "scalar_mops",
                            "batched_mops", "simd_mops", "speedup",
                            "simd_speedup", "identical", "simd_identical"):
                    if key not in row:
                        fail(path, f"rows[{i}]: missing '{key}'")
                if not isinstance(row["n"], int) or row["n"] <= 0:
                    fail(path, f"rows[{i}]: n must be a positive integer")
                for key in ("identical", "simd_identical"):
                    if not isinstance(row[key], bool):
                        fail(path, f"rows[{i}]: {key} must be a boolean")
                if row["identical"] is not True:
                    fail(path, f"rows[{i}]: batched backend diverged from "
                               f"scalar ({row['kernel']}/{row['format']})")
                if row["simd_identical"] is not True:
                    fail(path, f"rows[{i}]: simd backend diverged from "
                               f"scalar ({row['kernel']}/{row['format']})")
                continue
            if experiment == "blocked":
                # bench/perf_blocked.cpp rows: "speedup" compares the
                # unblocked and blocked schedules at one thread, "scaling"
                # re-runs the blocked schedule across thread counts, "spmv"
                # is the large-tier Csr::spmv curve.  Identity booleans are
                # load-bearing: a False means the blocked schedule or the
                # thread count changed result bits, which the contract
                # (la/blocked.hpp) forbids.
                if not isinstance(doc["options"].get("block"), int) \
                        or doc["options"]["block"] <= 0:
                    fail(path, "options: block must be a positive integer")
                kind = row.get("kind")
                if kind not in ("speedup", "scaling", "spmv"):
                    fail(path, f"rows[{i}]: unknown kind {kind!r}")
                for key in ("op", "format", "n", "threads"):
                    if key not in row:
                        fail(path, f"rows[{i}]: missing '{key}'")
                if not isinstance(row["n"], int) or row["n"] <= 0:
                    fail(path, f"rows[{i}]: n must be a positive integer")
                if not isinstance(row["threads"], int) or row["threads"] <= 0:
                    fail(path, f"rows[{i}]: threads must be a positive "
                               f"integer")
                if kind == "speedup":
                    for key in ("unblocked_ms", "blocked_ms", "speedup"):
                        if not isinstance(row.get(key), (int, float)):
                            fail(path, f"rows[{i}]: missing '{key}'")
                    if row.get("identical") is not True:
                        fail(path, f"rows[{i}]: blocked schedule diverged "
                                   f"from unblocked bitwise")
                elif kind == "scaling":
                    if not isinstance(row.get("blocked_ms"), (int, float)):
                        fail(path, f"rows[{i}]: missing 'blocked_ms'")
                    if row.get("identical") is not True:
                        fail(path, f"rows[{i}]: blocked schedule diverged "
                                   f"from unblocked bitwise")
                    if row.get("identical_across_threads") is not True:
                        fail(path, f"rows[{i}]: results diverged across "
                                   f"thread counts")
                else:
                    if not isinstance(row.get("mops"), (int, float)):
                        fail(path, f"rows[{i}]: missing 'mops'")
                    if row.get("identical_across_threads") is not True:
                        fail(path, f"rows[{i}]: spmv bytes diverged across "
                                   f"thread counts")
                continue
            if experiment == "serve":
                # bench/perf_serve.cpp throughput rows: one per thread count,
                # cold phase fills the caches, warm phase must hit them, and
                # every thread count must produce byte-identical responses.
                for key in ("threads", "requests", "solves_per_sec_cold",
                            "solves_per_sec_warm", "cache_hit_rate_warm",
                            "identical_across_threads"):
                    if key not in row:
                        fail(path, f"rows[{i}]: missing '{key}'")
                if not isinstance(row["threads"], int) or row["threads"] <= 0:
                    fail(path, f"rows[{i}]: threads must be a positive "
                               f"integer")
                rate = row["cache_hit_rate_warm"]
                if not isinstance(rate, (int, float)) or not rate > 0:
                    fail(path, f"rows[{i}]: warm cache hit rate must be > 0 "
                               f"(got {rate!r})")
                if row["identical_across_threads"] is not True:
                    fail(path, f"rows[{i}]: responses diverged across "
                               f"thread counts")
                continue
            if not isinstance(row.get("matrix"), str):
                fail(path, f"rows[{i}]: missing matrix name")
            if experiment.startswith("lu_ir"):
                check_refinement_precision(path, doc)
                cells = row.get("cells")
                if not isinstance(cells, list) or not cells:
                    fail(path, f"rows[{i}]: cells must be a non-empty array")
                for j, c in enumerate(cells):
                    where = f"rows[{i}].cells[{j}]"
                    if not isinstance(c.get("format"), str):
                        fail(path, f"{where}: missing format")
                    check_lu_ir_report(path, c.get("report"),
                                       f"{where}.report")
                continue
            if experiment.startswith("gmres_ir"):
                check_refinement_precision(path, doc)
                cells = row.get("cells")
                if not isinstance(cells, list) or not cells:
                    fail(path, f"rows[{i}]: cells must be a non-empty array")
                rescued = 0
                for j, c in enumerate(cells):
                    where = f"rows[{i}].cells[{j}]"
                    if not isinstance(c.get("format"), str):
                        fail(path, f"{where}: missing format")
                    check_lu_ir_report(path, c.get("lu"), f"{where}.lu")
                    check_lu_ir_report(path, c.get("gmres"), f"{where}.gmres")
                    if not isinstance(c.get("rescued"), bool):
                        fail(path, f"{where}: rescued must be a boolean")
                    want = (c["gmres"]["status"] == "converged"
                            and c["lu"]["status"] != "converged")
                    if c["rescued"] is not want:
                        fail(path, f"{where}: rescued flag contradicts the "
                                   f"lu/gmres statuses")
                    rescued += c["rescued"]
                if row.get("rescue_count") != rescued:
                    fail(path, f"rows[{i}]: rescue_count "
                               f"{row.get('rescue_count')!r} != {rescued} "
                               f"rescued cells")
                continue
            if experiment.startswith("cg"):
                for fmt in ("f64", "f32", "p32_2", "p32_3"):
                    if fmt not in row:
                        fail(path, f"rows[{i}]: missing cell '{fmt}'")
                    check_solve_report(path, row[fmt], f"rows[{i}].{fmt}")
            elif experiment.startswith("cholesky"):
                # Since CholCell became la::SolveReport the cells share the
                # iterative emitters' shape (the old {ok, backward_error}
                # form is gone).
                for fmt in ("f64", "f32", "p32_2", "p32_3"):
                    if fmt not in row:
                        fail(path, f"rows[{i}]: missing cell '{fmt}'")
                    check_solve_report(path, row[fmt], f"rows[{i}].{fmt}")
            elif experiment.startswith("ir"):
                check_refinement_precision(path, doc)
                for fmt in ("f16", "p16_1", "p16_2"):
                    cell = row.get(fmt)
                    if not isinstance(cell, dict) \
                            or cell.get("status") not in SOLVE_STATUSES:
                        fail(path, f"rows[{i}].{fmt}: bad IR cell")
    check_telemetry(path, doc.get("telemetry", []))
    print(f"{path}: ok ({experiment}, {len(doc.get('rows', []))} rows, "
          f"{len(doc.get('telemetry', []))} telemetry formats)")


def check_serve_responses(path):
    """JSONL of pstab-serve-v1 response envelopes: every line is one
    response object with the schema tag, a request id, and either an ok
    result object or an error string (serve/protocol.cpp)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(path, f"unreadable: {e}")
    if not lines:
        fail(path, "no responses")
    n_ok = 0
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        try:
            doc = json.loads(line)
        except ValueError as e:
            fail(path, f"{where}: invalid JSON: {e}")
        if doc.get("schema") != SERVE_SCHEMA:
            fail(path, f"{where}: schema is {doc.get('schema')!r}, "
                       f"expected {SERVE_SCHEMA!r}")
        if not isinstance(doc.get("id"), int) or doc["id"] < 0:
            fail(path, f"{where}: id must be a non-negative integer")
        ok = doc.get("ok")
        if not isinstance(ok, bool):
            fail(path, f"{where}: 'ok' must be a boolean")
        if ok:
            if not isinstance(doc.get("result"), dict):
                fail(path, f"{where}: ok response missing result object")
            n_ok += 1
        else:
            err = doc.get("error")
            if not isinstance(err, str) or not err:
                fail(path, f"{where}: error response missing error string")
        # Responses must never leak engine state (cache_hit et al.): a warm
        # response has to be byte-identical to a cold one.
        for key in doc:
            if key not in ("schema", "id", "ok", "result", "error"):
                fail(path, f"{where}: unexpected envelope key {key!r}")
    print(f"{path}: ok ({len(lines)} responses, {n_ok} successful)")


def main(argv):
    if len(argv) >= 2 and argv[1] == "--serve-responses":
        if len(argv) < 3:
            print(__doc__.strip(), file=sys.stderr)
            return 1
        for path in argv[2:]:
            check_serve_responses(path)
        return 0
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
