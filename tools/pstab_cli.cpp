// pstab — command-line front end to the positstab library.
//
//   pstab list                          show the Table I suite
//   pstab gen-mtx <dir>                 write the synthetic suite as .mtx
//   pstab cg <matrix> [--rescale]       CG in all four 32-bit formats
//   pstab chol <matrix> [--rescale]     Cholesky backward errors
//   pstab ir <matrix> [--higham]        mixed-precision IR in 16-bit formats
//   pstab precision <value>             how each format represents a number
//   pstab fuzz [--seed S] [--cases N]   differential fuzzing vs the GMP oracle
//   pstab inject [--solver cg|cholesky|ir] [--seed S] [--trials N]
//                [--recovery] [--json PATH]   bit-flip fault campaign
//
// cg|chol|ir additionally take `--json <path>`: write the run as a
// pstab-results-v1 artifact (with telemetry counters) next to the console
// table.  Exit code 0 on success, 1 on usage errors, 2 on runtime failures.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>

#include "core/experiments.hpp"
#include "core/kernels_bench.hpp"
#include "core/report.hpp"
#include "core/report_json.hpp"
#include "core/telemetry/telemetry.hpp"
#include "fuzz/fuzz.hpp"
#include "ieee/softfloat.hpp"
#include "la/kernels/simd/simd.hpp"
#include "matrices/mm_io.hpp"
#include "matrices/suite.hpp"
#include "posit/lut.hpp"
#include "posit/posit_math.hpp"
#include "resilience/campaign.hpp"

namespace {

using namespace pstab;

int usage() {
  std::fprintf(stderr,
               "usage: pstab <command> [args]\n"
               "  list | gen-mtx <dir> | cg <matrix> [--rescale] |\n"
               "  chol <matrix> [--rescale] | ir <matrix> [--higham] |\n"
               "  kernels --bench [--n <len>] |\n"
               "  precision <value> |\n"
               "  fuzz [--seed S] [--cases N] [--surfaces LIST]\n"
               "       [--corpus DIR] [--no-minimize] [--replay DIR]\n"
               "  inject [--solver cg|cholesky|ir] [--seed S] [--trials N]\n"
               "         [--formats LIST] [--n SIZE] [--cond K] [--recovery]\n"
               "         [--json PATH]\n"
               "  cg|chol|ir also accept: --json <path> --tol <v>\n"
               "    --max-iter <n> --kernels scalar|batched|simd|auto\n"
               "  kernels also accepts: --json <path>\n"
               "  PSTAB_SIMD=avx2|avx512|neon|scalar pins the simd ISA\n");
  return 1;
}

// Flags shared by the solver subcommands (cg/chol/ir).  One parser for all
// three: each flag overlays the common core::ExperimentOptions base via
// apply(), so per-command defaults survive when a flag is absent.
struct SolverArgs {
  bool rescale = false;   // --rescale (cg/chol) or --higham (ir)
  std::string json_path;  // --json <path>; empty = no artifact
  double tol = 0.0;       // --tol <v>; 0 = keep the command default
  int max_iter = 0;       // --max-iter <n>; 0 = keep the command default
  la::kernels::Backend backend = la::kernels::Backend::Auto;  // --kernels
  bool ok = true;

  void apply(core::ExperimentOptions& o) const {
    if (tol > 0) o.tol = tol;
    if (max_iter > 0) o.max_iter = max_iter;
    o.backend = backend;
  }
};

bool parse_backend(const char* s, la::kernels::Backend& out) {
  if (std::strcmp(s, "scalar") == 0) out = la::kernels::Backend::Scalar;
  else if (std::strcmp(s, "batched") == 0) out = la::kernels::Backend::Batched;
  else if (std::strcmp(s, "simd") == 0) out = la::kernels::Backend::Simd;
  else if (std::strcmp(s, "auto") == 0) out = la::kernels::Backend::Auto;
  else return false;
  return true;
}

SolverArgs parse_solver_args(int argc, char** argv, int first) {
  SolverArgs f;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rescale") == 0 ||
        std::strcmp(argv[i], "--higham") == 0) {
      f.rescale = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      f.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      f.tol = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--max-iter") == 0 && i + 1 < argc) {
      f.max_iter = int(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--kernels") == 0 && i + 1 < argc) {
      if (!parse_backend(argv[++i], f.backend)) {
        std::fprintf(stderr, "unknown backend %s\n", argv[i]);
        f.ok = false;
        return f;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      f.ok = false;
      return f;
    }
  }
  // Artifacts embed telemetry counters, so recording must be on for the run.
  if (!f.json_path.empty()) {
    telemetry::set_enabled(true);
    telemetry::reset();
  }
  return f;
}

int emit_json(const std::string& path, const std::string& doc) {
  if (!core::write_text_file(path, doc)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmd_list() {
  core::Table t({"Matrix", "k(A)", "N", "||A||2", "NNZ"});
  for (const auto& s : matrices::table1_specs())
    t.row({s.name, core::fmt_sci(s.cond, 1), core::fmt_int(s.n),
           core::fmt_sci(s.norm2, 1), core::fmt_int(s.nnz)});
  t.print();
  return 0;
}

int cmd_gen_mtx(const std::string& dir) {
  for (const auto& s : matrices::table1_specs()) {
    const auto& g = matrices::suite_matrix(s.name);
    const std::string path = dir + "/" + s.name + ".mtx";
    matrices::write_matrix_market_file(path, g.csr, /*symmetric=*/true);
    std::printf("wrote %s (n=%d nnz=%zu)\n", path.c_str(), g.n, g.csr.nnz());
  }
  return 0;
}

int cmd_cg(const std::string& name, const SolverArgs& flags) {
  const auto spec = matrices::find_spec(name);
  if (!spec) {
    std::fprintf(stderr, "unknown matrix %s (try 'pstab list')\n",
                 name.c_str());
    return 1;
  }
  const bool rescale = flags.rescale;
  core::CgExperimentOptions opt;
  opt.rescale_pow2_inf = rescale;
  flags.apply(opt);
  const auto row = core::run_cg_experiment(matrices::suite_matrix(name), opt);
  const auto cell = [](const core::CgCell& c) {
    if (c.status == la::CgStatus::converged)
      return std::to_string(c.iterations) + " iters";
    return std::string(c.status == la::CgStatus::breakdown ? "diverged"
                                                           : "hit cap");
  };
  std::printf("CG on %s%s\n", name.c_str(), rescale ? " (rescaled)" : "");
  std::printf("  Float64     %s\n", cell(row.f64).c_str());
  std::printf("  Float32     %s\n", cell(row.f32).c_str());
  std::printf("  Posit(32,2) %s\n", cell(row.p32_2).c_str());
  std::printf("  Posit(32,3) %s\n", cell(row.p32_3).c_str());
  if (!flags.json_path.empty())
    return emit_json(flags.json_path,
                     core::cg_results_json(rescale ? "cg_rescaled" : "cg",
                                           {row}, opt));
  return 0;
}

int cmd_chol(const std::string& name, const SolverArgs& flags) {
  if (!matrices::find_spec(name)) return usage();
  const bool rescale = flags.rescale;
  core::CholExperimentOptions opt;
  opt.rescale_diag_avg = rescale;
  flags.apply(opt);
  const auto row =
      core::run_cholesky_experiment(matrices::suite_matrix(name), opt);
  const auto cell = [](const core::CholCell& c) {
    return c.ok ? core::fmt_sci(c.backward_error, 2) : std::string("failed");
  };
  std::printf("Cholesky backward error on %s%s\n", name.c_str(),
              rescale ? " (diag-rescaled)" : "");
  std::printf("  Float32     %s\n", cell(row.f32).c_str());
  std::printf("  Posit(32,2) %s (%+.2f digits vs F32)\n",
              cell(row.p32_2).c_str(), row.extra_digits(row.p32_2));
  std::printf("  Posit(32,3) %s (%+.2f digits vs F32)\n",
              cell(row.p32_3).c_str(), row.extra_digits(row.p32_3));
  if (!flags.json_path.empty())
    return emit_json(
        flags.json_path,
        core::cholesky_results_json(
            rescale ? "cholesky_rescaled" : "cholesky", {row}, opt));
  return 0;
}

int cmd_ir(const std::string& name, const SolverArgs& flags) {
  if (!matrices::find_spec(name)) return usage();
  const bool higham = flags.rescale;
  core::IrExperimentOptions opt;
  opt.higham = higham;
  flags.apply(opt);
  const auto row = core::run_ir_experiment(matrices::suite_matrix(name), opt);
  const auto cell = [](const la::IrReport& r) {
    const bool failed = r.status == la::IrStatus::factorization_failed ||
                        r.status == la::IrStatus::diverged;
    return core::fmt_iters(failed, r.status == la::IrStatus::max_iterations,
                           r.iterations);
  };
  std::printf("mixed-precision IR on %s (%s)\n", name.c_str(),
              higham ? "Higham-scaled" : "naive");
  std::printf("  Float16     %s\n", cell(row.f16).c_str());
  std::printf("  Posit(16,1) %s\n", cell(row.p16_1).c_str());
  std::printf("  Posit(16,2) %s\n", cell(row.p16_2).c_str());
  if (!flags.json_path.empty())
    return emit_json(flags.json_path,
                     core::ir_results_json(higham ? "ir_higham" : "ir_naive",
                                           {row}, opt));
  return 0;
}

int cmd_kernels(int argc, char** argv) {
  bool bench = false;
  int n = 4096;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench") == 0) {
      bench = true;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = int(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return usage();
    }
  }
  if (!bench || n <= 0) return usage();
  // No telemetry here: counters force the scalar fallback, which would turn
  // the comparison into scalar-vs-scalar.
  const auto rows = core::run_kernels_bench(n);
  std::printf("simd isa: %s\n",
              la::kernels::simd::isa_name(la::kernels::simd::active_isa()));
  core::Table t({"Kernel", "Format", "n", "Scalar Mop/s", "Batched Mop/s",
                 "Simd Mop/s", "B-Speedup", "S-Speedup", "Identical"});
  for (const auto& r : rows)
    t.row({r.kernel, r.format, core::fmt_int(r.n),
           core::fmt_fix(r.scalar_mops, 1), core::fmt_fix(r.batched_mops, 1),
           core::fmt_fix(r.simd_mops, 1), core::fmt_fix(r.speedup(), 2) + "x",
           core::fmt_fix(r.simd_speedup(), 2) + "x",
           r.identical && r.simd_identical ? "yes" : "NO"});
  t.print();
  if (!json_path.empty())
    return emit_json(json_path, core::kernels_results_json(rows, n));
  return 0;
}

template <class T>
void show_precision(const char* label, double v) {
  const T x = scalar_traits<T>::from_double(v);
  const double back = scalar_traits<T>::to_double(x);
  std::printf("  %-12s %-24.17g rel.err %.2e\n", label, back,
              v != 0 ? std::fabs(back - v) / std::fabs(v) : 0.0);
}

int cmd_precision(double v) {
  std::printf("representations of %.17g:\n", v);
  show_precision<Half>("Float16", v);
  show_precision<BFloat16>("BFloat16", v);
  show_precision<Posit16_1>("Posit(16,1)", v);
  show_precision<Posit16_2>("Posit(16,2)", v);
  show_precision<float>("Float32", v);
  show_precision<Posit32_2>("Posit(32,2)", v);
  show_precision<Posit32_3>("Posit(32,3)", v);
  show_precision<Posit64_3>("Posit(64,3)", v);
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  // Differential fuzzing of every arithmetic surface against the GMP oracle
  // (src/fuzz).  Deterministic per seed; failures are auto-minimized and
  // printed as replay records (and appended under --corpus).
  fuzz::Options opt;
  opt.cases = 100000;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc)
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    else if (a == "--cases" && i + 1 < argc)
      opt.cases = std::strtol(argv[++i], nullptr, 10);
    else if (a == "--surfaces" && i + 1 < argc)
      opt.surfaces = argv[++i];
    else if (a == "--corpus" && i + 1 < argc)
      opt.corpus_dir = argv[++i];
    else if (a == "--no-minimize")
      opt.minimize = false;
    else if (a == "--replay" && i + 1 < argc) {
      // Replay a corpus directory instead of fuzzing.
      long total = 0;
      std::vector<fuzz::Case> failures;
      const int bad = fuzz::replay_corpus_dir(argv[++i], &total, &failures);
      for (const auto& c : failures)
        std::printf("FAIL %s\n", fuzz::format_line(c).c_str());
      std::printf("fuzz replay: %ld records, %d failing\n", total, bad);
      return bad == 0 ? 0 : 2;
    } else {
      return usage();
    }
  }
  if (opt.cases <= 0) return usage();
  const fuzz::Stats st = fuzz::run(opt);
  for (const auto& c : st.failures)
    std::printf("FAIL %s\n", fuzz::format_line(c).c_str());
  std::printf("fuzz: seed=%llu cases=%ld (", (unsigned long long)opt.seed,
              st.cases);
  for (int s = 0; s < fuzz::kSurfaceCount; ++s)
    std::printf("%s%s=%ld", s ? " " : "", fuzz::surface_name(s),
                st.per_surface[s]);
  std::printf(") mismatches=%ld digest=%016llx\n", st.mismatches,
              (unsigned long long)st.digest);
  return st.mismatches == 0 ? 0 : 2;
}

int cmd_inject(int argc, char** argv) {
  // Fault-injection campaign (src/resilience): sweep formats x sites x bit
  // fields with seeded single-bit flips, classify each solve against the
  // GMP-verified clean solution.  Deterministic per seed and thread count.
  resilience::CampaignOptions opt;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--solver" && i + 1 < argc)
      opt.solver = argv[++i];
    else if (a == "--seed" && i + 1 < argc)
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    else if (a == "--trials" && i + 1 < argc)
      opt.trials = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--formats" && i + 1 < argc)
      opt.formats = argv[++i];
    else if (a == "--n" && i + 1 < argc)
      opt.n = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--cond" && i + 1 < argc)
      opt.cond = std::strtod(argv[++i], nullptr);
    else if (a == "--recovery")
      opt.recovery = true;
    else if (a == "--json" && i + 1 < argc)
      json_path = argv[++i];
    else
      return usage();
  }
  if (opt.trials <= 0 || opt.n < 4 ||
      (opt.solver != "cg" && opt.solver != "cholesky" && opt.solver != "ir"))
    return usage();
  const auto result = resilience::run_campaign(opt);
  core::Table t({"Format", "Site", "Field", "Masked", "Corrected", "Detected",
                 "SDC", "Hang"});
  for (const auto& c : result.cells)
    t.row({c.format, la::fault::to_string(c.site),
           resilience::to_string(c.field),
           core::fmt_int(c.counts[0]), core::fmt_int(c.counts[1]),
           core::fmt_int(c.counts[2]), core::fmt_int(c.counts[3]),
           core::fmt_int(c.counts[4])});
  t.print();
  int totals[resilience::kOutcomeCount] = {0, 0, 0, 0, 0};
  for (const auto& c : result.cells)
    for (int o = 0; o < resilience::kOutcomeCount; ++o)
      totals[o] += c.counts[o];
  std::printf(
      "inject: solver=%s seed=%llu recovery=%s masked=%d corrected=%d "
      "detected=%d sdc=%d hang=%d digest=%016llx\n",
      opt.solver.c_str(), (unsigned long long)opt.seed,
      opt.recovery ? "on" : "off", totals[0], totals[1], totals[2], totals[3],
      totals[4], (unsigned long long)result.digest);
  if (!json_path.empty())
    return emit_json(json_path, resilience::campaign_json(result));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  lut::enable_defaults();  // table-driven small posits (PSTAB_LUT=0 disables)
  if (telemetry::env_requested()) telemetry::set_enabled(true);
  const std::string cmd = argv[1];
  const bool is_solver = cmd == "cg" || cmd == "chol" || cmd == "ir";
  SolverArgs flags;
  if (is_solver && argc > 2) {
    flags = parse_solver_args(argc, argv, 3);
    if (!flags.ok) return usage();
  }
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "gen-mtx" && argc > 2) return cmd_gen_mtx(argv[2]);
    if (cmd == "cg" && argc > 2) return cmd_cg(argv[2], flags);
    if (cmd == "chol" && argc > 2) return cmd_chol(argv[2], flags);
    if (cmd == "ir" && argc > 2) return cmd_ir(argv[2], flags);
    if (cmd == "kernels") return cmd_kernels(argc, argv);
    if (cmd == "precision" && argc > 2)
      return cmd_precision(std::strtod(argv[2], nullptr));
    if (cmd == "fuzz") return cmd_fuzz(argc, argv);
    if (cmd == "inject") return cmd_inject(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
