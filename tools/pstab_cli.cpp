// pstab — command-line front end to the positstab library.
//
//   pstab list                          show the Table I suite
//   pstab gen-mtx <dir>                 write the synthetic suite as .mtx
//   pstab cg <matrix> [--rescale]       CG in all four 32-bit formats
//   pstab chol <matrix> [--rescale]     Cholesky backward errors
//   pstab ir <matrix> [--higham]        mixed-precision IR in 16-bit formats
//   pstab lu-ir <matrix> [--rescale]    LU-based three-precision IR (general)
//   pstab gmres-ir <matrix> [--rescale] GMRES-IR from the same LU factors
//   pstab serve --script F | --stdio | --port N   persistent solve engine
//   pstab serve-client --port N --script F        framed-TCP request driver
//   pstab chaos [--seed S] [--sessions N]         adversarial serve sessions
//   pstab precision <value>             how each format represents a number
//   pstab fuzz [--seed S] [--cases N]   differential fuzzing vs the GMP oracle
//   pstab inject [--solver cg|cholesky|ir] [--seed S] [--trials N]
//                [--recovery] [--json PATH]   bit-flip fault campaign
//
// The solver subcommands (cg/chol/ir) all parse through
// core::parse_solver_cli into one core::SolveRequest — the same struct the
// serve engine receives over the wire — and every parse failure names the
// offending token and exits non-zero (no silently ignored typos).
// `--json <path>` writes the run as a pstab-results-v1 artifact.
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/experiments.hpp"
#include "core/kernels_bench.hpp"
#include "core/report.hpp"
#include "core/report_json.hpp"
#include "core/telemetry/telemetry.hpp"
#include "fuzz/fuzz.hpp"
#include "ieee/softfloat.hpp"
#include "la/kernels/simd/simd.hpp"
#include "matrices/mm_io.hpp"
#include "matrices/suite.hpp"
#include "posit/lut.hpp"
#include "posit/posit_math.hpp"
#include "resilience/campaign.hpp"
#include "serve/chaos.hpp"
#include "serve/engine.hpp"

namespace {

using namespace pstab;

int usage() {
  std::fprintf(stderr,
               "usage: pstab <command> [args]\n"
               "  list | gen-mtx <dir> | cg <matrix> [--rescale] |\n"
               "  chol <matrix> [--rescale] | ir <matrix> [--higham] |\n"
               "  lu-ir <matrix> [--rescale] | gmres-ir <matrix> [--rescale] |\n"
               "  serve --script FILE [--out FILE] | --stdio |\n"
               "        --port N [--once]   with [--threads N] [--cache-mb M]\n"
               "        [--max-frame-kb K] [--no-coalesce] [--max-queue N]\n"
               "        [--max-n N] [--max-matrix-mb M] [--max-budget T]\n"
               "        [--watchdog-ms MS]\n"
               "  serve-client --port N --script FILE [--out FILE]\n"
               "               [--shutdown]\n"
               "  chaos [--seed S] [--sessions N] [--threads T]\n"
               "        [--timeout-ms MS]\n"
               "  kernels --bench [--n <len>] |\n"
               "  precision <value> |\n"
               "  fuzz [--seed S] [--cases N] [--surfaces LIST]\n"
               "       [--corpus DIR] [--no-minimize] [--replay DIR]\n"
               "  inject [--solver cg|cholesky|ir] [--seed S] [--trials N]\n"
               "         [--formats LIST] [--n SIZE] [--cond K] [--recovery]\n"
               "         [--json PATH]\n"
               "  cg|chol|ir|lu-ir|gmres-ir also accept: --json <path>\n"
               "    --tol <v> --max-iter <n> --max-iter-per-n <n> --fused\n"
               "    --history --resilience --rhs-seed <s>\n"
               "    --kernels scalar|batched|simd|auto --block <w>\n"
               "    --factor grid|f16|bf16|p16_1|p16_2|f32|p32_2\n"
               "    --working f64 --residual auto|f64|dd|quire\n"
               "  kernels also accepts: --json <path>\n"
               "  PSTAB_SIMD=avx2|avx512|neon|scalar pins the simd ISA\n");
  return 1;
}

/// Parse failure: print the message (it names the offending token), point at
/// the usage text, exit 1.
int bad_usage(const std::string& msg) {
  std::fprintf(stderr, "pstab: %s\n", msg.c_str());
  return usage();
}

int emit_json(const std::string& path, const std::string& doc) {
  if (!core::write_text_file(path, doc)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

bool read_text_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[1 << 16];
  std::size_t got;
  out.clear();
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  const bool ok = !std::ferror(f);
  std::fclose(f);
  return ok;
}

int cmd_list(int, char**) {
  core::Table t({"Matrix", "k(A)", "N", "||A||2", "NNZ"});
  for (const auto& s : matrices::table1_specs())
    t.row({s.name, core::fmt_sci(s.cond, 1), core::fmt_int(s.n),
           core::fmt_sci(s.norm2, 1), core::fmt_int(s.nnz)});
  t.print();
  return 0;
}

int cmd_gen_mtx(int argc, char** argv) {
  if (argc < 3) return bad_usage("command 'gen-mtx' requires a directory");
  const std::string dir = argv[2];
  for (const auto& s : matrices::table1_specs()) {
    const auto& g = matrices::suite_matrix(s.name);
    const std::string path = dir + "/" + s.name + ".mtx";
    matrices::write_matrix_market_file(path, g.csr, /*symmetric=*/true);
    std::printf("wrote %s (n=%d nnz=%zu)\n", path.c_str(), g.n, g.csr.nnz());
  }
  return 0;
}

// Shared front half of cg/chol/ir: matrix arg, unified flag parse, matrix
// lookup.  Returns nonzero (the exit code) on failure.
int solver_prologue(core::Solver solver, int argc, char** argv,
                    core::CliParse& p) {
  if (argc < 3)
    return bad_usage(std::string("command '") + argv[1] +
                     "' requires a matrix name");
  p = core::parse_solver_cli(solver, argv[2], argc, argv, 3);
  if (!p.ok) return bad_usage(p.error);
  const auto spec = matrices::find_spec(p.req.matrix);
  if (!spec)
    return bad_usage("unknown matrix '" + p.req.matrix +
                     "' (try 'pstab list')");
  if (core::solver_info(solver).requires_spd && !spec->spd)
    return bad_usage(std::string("solver '") + core::to_string(solver) +
                     "' requires an SPD matrix ('" + p.req.matrix +
                     "' is general; use lu-ir or gmres-ir)");
  if (spec->sparse_only && solver != core::Solver::cg)
    return bad_usage(std::string("solver '") + core::to_string(solver) +
                     "' needs a dense image, but '" + p.req.matrix +
                     "' is a sparse-only large-n matrix (use cg)");
  return 0;
}

/// "k iters" / "1000+" / "-" formatting for a general-refinement cell.
std::string lu_ir_cell_text(const la::LuIrReport& r) {
  const bool failed = r.status == la::SolveStatus::factorization_failed ||
                      r.status == la::SolveStatus::diverged;
  return core::fmt_iters(failed, r.status == la::SolveStatus::max_iterations,
                         r.iterations);
}

int cmd_cg(int argc, char** argv) {
  core::CliParse p;
  if (const int rc = solver_prologue(core::Solver::cg, argc, argv, p)) return rc;
  const auto row =
      core::run_cg_experiment(matrices::suite_matrix(p.req.matrix), p.req);
  const auto cell = [](const core::CgCell& c) {
    if (c.converged()) return std::to_string(c.iterations) + " iters";
    if (c.status == la::SolveStatus::deadline_exceeded)
      return std::string("deadline");
    return std::string(c.status == la::SolveStatus::breakdown ? "diverged"
                                                              : "hit cap");
  };
  std::printf("CG on %s%s\n", p.req.matrix.c_str(),
              p.req.rescale ? " (rescaled)" : "");
  std::printf("  Float64     %s\n", cell(row.f64).c_str());
  std::printf("  Float32     %s\n", cell(row.f32).c_str());
  std::printf("  Posit(32,2) %s\n", cell(row.p32_2).c_str());
  std::printf("  Posit(32,3) %s\n", cell(row.p32_3).c_str());
  if (!p.json_path.empty())
    return emit_json(p.json_path, core::cg_results_json(
                                      p.req.experiment_name(), {row}, p.req));
  return 0;
}

int cmd_chol(int argc, char** argv) {
  core::CliParse p;
  if (const int rc = solver_prologue(core::Solver::cholesky, argc, argv, p))
    return rc;
  const auto row = core::run_cholesky_experiment(
      matrices::suite_matrix(p.req.matrix), p.req);
  const auto cell = [](const core::CholCell& c) {
    return c.converged() ? core::fmt_sci(c.true_relres, 2)
                         : std::string("failed");
  };
  std::printf("Cholesky backward error on %s%s\n", p.req.matrix.c_str(),
              p.req.rescale ? " (diag-rescaled)" : "");
  std::printf("  Float32     %s\n", cell(row.f32).c_str());
  std::printf("  Posit(32,2) %s (%+.2f digits vs F32)\n",
              cell(row.p32_2).c_str(), row.extra_digits(row.p32_2));
  std::printf("  Posit(32,3) %s (%+.2f digits vs F32)\n",
              cell(row.p32_3).c_str(), row.extra_digits(row.p32_3));
  if (!p.json_path.empty())
    return emit_json(p.json_path,
                     core::cholesky_results_json(p.req.experiment_name(),
                                                 {row}, p.req));
  return 0;
}

int cmd_ir(int argc, char** argv) {
  core::CliParse p;
  if (const int rc = solver_prologue(core::Solver::ir, argc, argv, p)) return rc;
  const auto row =
      core::run_ir_experiment(matrices::suite_matrix(p.req.matrix), p.req);
  const auto cell = [](const la::IrReport& r) {
    const bool failed = r.status == la::SolveStatus::factorization_failed ||
                        r.status == la::SolveStatus::diverged;
    return core::fmt_iters(failed,
                           r.status == la::SolveStatus::max_iterations,
                           r.iterations);
  };
  std::printf("mixed-precision IR on %s (%s)\n", p.req.matrix.c_str(),
              p.req.rescale ? "Higham-scaled" : "naive");
  std::printf("  Float16     %s\n", cell(row.f16).c_str());
  std::printf("  Posit(16,1) %s\n", cell(row.p16_1).c_str());
  std::printf("  Posit(16,2) %s\n", cell(row.p16_2).c_str());
  if (!p.json_path.empty())
    return emit_json(
        p.json_path,
        core::ir_results_json(p.req.experiment_name(), {row}, p.req));
  return 0;
}

int cmd_lu_ir(int argc, char** argv) {
  core::CliParse p;
  if (const int rc = solver_prologue(core::Solver::lu_ir, argc, argv, p))
    return rc;
  const auto row =
      core::run_lu_ir_experiment(matrices::suite_matrix(p.req.matrix), p.req);
  std::printf("LU-IR on %s (%s, residual %s)\n", p.req.matrix.c_str(),
              p.req.rescale ? "equilibrated" : "naive",
              p.req.effective_residual().c_str());
  for (const auto& c : row.cells)
    std::printf("  %-6s %s\n", c.format.c_str(),
                lu_ir_cell_text(c.rep).c_str());
  if (!p.json_path.empty())
    return emit_json(
        p.json_path,
        core::lu_ir_results_json(p.req.experiment_name(), {row}, p.req));
  return 0;
}

int cmd_gmres_ir(int argc, char** argv) {
  core::CliParse p;
  if (const int rc = solver_prologue(core::Solver::gmres_ir, argc, argv, p))
    return rc;
  const auto row = core::run_gmres_ir_experiment(
      matrices::suite_matrix(p.req.matrix), p.req);
  std::printf("GMRES-IR on %s (%s, residual %s)\n", p.req.matrix.c_str(),
              p.req.rescale ? "equilibrated" : "naive",
              p.req.effective_residual().c_str());
  for (const auto& c : row.cells)
    std::printf("  %-6s lu %-8s gmres %-8s%s\n", c.format.c_str(),
                lu_ir_cell_text(c.lu).c_str(),
                lu_ir_cell_text(c.gmres).c_str(),
                c.rescued() ? "  RESCUED" : "");
  std::printf("  rescued: %d of %zu formats\n", row.rescue_count(),
              row.cells.size());
  if (!p.json_path.empty())
    return emit_json(
        p.json_path,
        core::gmres_ir_results_json(p.req.experiment_name(), {row}, p.req));
  return 0;
}

int cmd_serve(int argc, char** argv) {
  serve::EngineOptions opt;
  std::string script_path, out_path;
  bool stdio = false, once = false;
  int port = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--stdio") stdio = true;
    else if (a == "--once") once = true;
    else if (a == "--no-coalesce") opt.coalesce = false;
    else if (a == "--script" && has_value) script_path = argv[++i];
    else if (a == "--out" && has_value) out_path = argv[++i];
    else if (a == "--port" && has_value)
      port = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--threads" && has_value)
      opt.threads = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--cache-mb" && has_value)
      opt.cache_bytes =
          std::size_t(std::strtoull(argv[++i], nullptr, 10)) << 20;
    else if (a == "--max-frame-kb" && has_value)
      opt.max_frame = std::size_t(std::strtoull(argv[++i], nullptr, 10)) << 10;
    else if (a == "--max-queue" && has_value)
      opt.max_queue = std::size_t(std::strtoull(argv[++i], nullptr, 10));
    else if (a == "--max-n" && has_value)
      opt.max_n = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--max-matrix-mb" && has_value)
      opt.max_matrix_bytes =
          std::size_t(std::strtoull(argv[++i], nullptr, 10)) << 20;
    else if (a == "--max-budget" && has_value)
      opt.max_budget_ticks = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--watchdog-ms" && has_value)
      opt.watchdog_ms = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--script" || a == "--out" || a == "--port" ||
             a == "--threads" || a == "--cache-mb" || a == "--max-frame-kb" ||
             a == "--max-queue" || a == "--max-n" || a == "--max-matrix-mb" ||
             a == "--max-budget" || a == "--watchdog-ms")
      return bad_usage("flag '" + a + "' requires a value");
    else
      return bad_usage("unknown flag '" + a + "'");
  }
  const int modes = int(!script_path.empty()) + int(stdio) + int(port >= 0);
  if (modes != 1)
    return bad_usage("serve needs exactly one of --script, --stdio, --port");

  serve::Engine engine(opt);
  if (!script_path.empty()) {
    std::string text;
    if (!read_text_file(script_path, text)) {
      std::fprintf(stderr, "error: cannot read %s\n", script_path.c_str());
      return 2;
    }
    const auto responses = engine.run_script(text);
    std::string doc;
    for (const auto& r : responses) {
      doc += r;
      doc += '\n';
    }
    if (!out_path.empty()) return emit_json(out_path, doc);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return 0;
  }
  if (stdio) {
    const auto end = engine.serve_stream(stdin, stdout);
    if (end == serve::Engine::StreamEnd::frame_error) {
      std::fprintf(stderr, "error: frame error on stdin\n");
      return 2;
    }
    return 0;
  }
  std::string err;
  if (!engine.serve_tcp(port, once, err)) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  return 0;
}

int cmd_serve_client(int argc, char** argv) {
  std::string script_path, out_path;
  int port = -1;
  bool shutdown = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--shutdown") shutdown = true;
    else if (a == "--script" && has_value) script_path = argv[++i];
    else if (a == "--out" && has_value) out_path = argv[++i];
    else if (a == "--port" && has_value)
      port = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--script" || a == "--out" || a == "--port")
      return bad_usage("flag '" + a + "' requires a value");
    else
      return bad_usage("unknown flag '" + a + "'");
  }
  if (port < 0 || script_path.empty())
    return bad_usage("serve-client requires --port and --script");
  std::string text;
  if (!read_text_file(script_path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", script_path.c_str());
    return 2;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof addr) != 0) {
    std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%d\n", port);
    if (fd >= 0) ::close(fd);
    return 2;
  }
  std::FILE* out = ::fdopen(fd, "wb");
  std::FILE* in = ::fdopen(::dup(fd), "rb");

  // One frame per non-blank script line; the server validates the JSON and
  // answers every frame, so expected responses == frames sent.
  std::size_t sent = 0, pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      if (end == text.size()) break;
      continue;
    }
    serve::write_frame(out, line);
    ++sent;
    if (end == text.size()) break;
  }
  if (shutdown) {
    serve::write_frame(
        out, std::string("{\"schema\":\"") + serve::kSchema +
                 "\",\"op\":\"shutdown\",\"id\":18446744073709551615}");
    ++sent;
  }

  std::vector<std::pair<std::uint64_t, std::string>> responses;
  std::string payload, err;
  for (std::size_t i = 0; i < sent; ++i) {
    if (serve::read_frame(in, payload, serve::kDefaultMaxFrame, err) !=
        serve::FrameRead::ok) {
      std::fprintf(stderr, "error: %s\n",
                   err.empty() ? "connection closed early" : err.c_str());
      std::fclose(in);
      std::fclose(out);
      return 2;
    }
    serve::JsonValue doc;
    std::uint64_t id = 0;
    if (serve::json_parse(payload, doc, err)) {
      const serve::JsonValue* idv = doc.find("id");
      if (idv && idv->is_uint()) id = idv->as_uint();
    }
    responses.emplace_back(id, payload);
  }
  std::fclose(in);
  std::fclose(out);

  std::stable_sort(responses.begin(), responses.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string doc;
  for (auto& [id, json] : responses) {
    doc += json;
    doc += '\n';
  }
  if (!out_path.empty()) return emit_json(out_path, doc);
  std::fwrite(doc.data(), 1, doc.size(), stdout);
  return 0;
}

int cmd_chaos(int argc, char** argv) {
  // Seeded adversarial sessions against a live serve engine (serve/chaos.hpp):
  // truncated/corrupt frames, hostile prefixes, vanishing readers, shutdown
  // under load.  Deterministic per (seed, sessions, threads); exit 0 only if
  // zero hangs and zero byte divergences from the clean replay.
  serve::ChaosOptions opt;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--seed" && has_value)
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    else if (a == "--sessions" && has_value)
      opt.sessions = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--threads" && has_value)
      opt.threads = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--timeout-ms" && has_value)
      opt.timeout_ms = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--seed" || a == "--sessions" || a == "--threads" ||
             a == "--timeout-ms")
      return bad_usage("flag '" + a + "' requires a value");
    else
      return bad_usage("unknown flag '" + a + "'");
  }
  if (opt.sessions <= 0 || opt.timeout_ms <= 0) return usage();
  const serve::ChaosReport rep = serve::run_chaos(opt);
  std::printf(
      "chaos: seed=%llu sessions=%d frames=%d responses=%d compared=%d "
      "divergences=%d hangs=%d digest=%016llx\n",
      (unsigned long long)opt.seed, rep.sessions, rep.frames_sent,
      rep.responses, rep.compared, rep.divergences, rep.hangs,
      (unsigned long long)rep.digest);
  if (!rep.ok()) {
    std::fprintf(stderr, "chaos FAILURE: %s\n", rep.first_failure.c_str());
    return 2;
  }
  return 0;
}

int cmd_kernels(int argc, char** argv) {
  bool bench = false;
  int n = 4096;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench") == 0) {
      bench = true;
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = int(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      return bad_usage(std::string("unknown flag '") + argv[i] + "'");
    }
  }
  if (!bench || n <= 0) return usage();
  // No telemetry here: counters force the scalar fallback, which would turn
  // the comparison into scalar-vs-scalar.
  const auto rows = core::run_kernels_bench(n);
  std::printf("simd isa: %s\n",
              la::kernels::simd::isa_name(la::kernels::simd::active_isa()));
  core::Table t({"Kernel", "Format", "n", "Scalar Mop/s", "Batched Mop/s",
                 "Simd Mop/s", "B-Speedup", "S-Speedup", "Identical"});
  for (const auto& r : rows)
    t.row({r.kernel, r.format, core::fmt_int(r.n),
           core::fmt_fix(r.scalar_mops, 1), core::fmt_fix(r.batched_mops, 1),
           core::fmt_fix(r.simd_mops, 1), core::fmt_fix(r.speedup(), 2) + "x",
           core::fmt_fix(r.simd_speedup(), 2) + "x",
           r.identical && r.simd_identical ? "yes" : "NO"});
  t.print();
  if (!json_path.empty())
    return emit_json(json_path, core::kernels_results_json(rows, n));
  return 0;
}

template <class T>
void show_precision(const char* label, double v) {
  const T x = scalar_traits<T>::from_double(v);
  const double back = scalar_traits<T>::to_double(x);
  std::printf("  %-12s %-24.17g rel.err %.2e\n", label, back,
              v != 0 ? std::fabs(back - v) / std::fabs(v) : 0.0);
}

int cmd_precision(int argc, char** argv) {
  if (argc < 3) return bad_usage("command 'precision' requires a value");
  const double v = std::strtod(argv[2], nullptr);
  std::printf("representations of %.17g:\n", v);
  show_precision<Half>("Float16", v);
  show_precision<BFloat16>("BFloat16", v);
  show_precision<Posit16_1>("Posit(16,1)", v);
  show_precision<Posit16_2>("Posit(16,2)", v);
  show_precision<float>("Float32", v);
  show_precision<Posit32_2>("Posit(32,2)", v);
  show_precision<Posit32_3>("Posit(32,3)", v);
  show_precision<Posit64_3>("Posit(64,3)", v);
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  // Differential fuzzing of every arithmetic surface against the GMP oracle
  // (src/fuzz).  Deterministic per seed; failures are auto-minimized and
  // printed as replay records (and appended under --corpus).
  fuzz::Options opt;
  opt.cases = 100000;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seed" && i + 1 < argc)
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    else if (a == "--cases" && i + 1 < argc)
      opt.cases = std::strtol(argv[++i], nullptr, 10);
    else if (a == "--surfaces" && i + 1 < argc)
      opt.surfaces = argv[++i];
    else if (a == "--corpus" && i + 1 < argc)
      opt.corpus_dir = argv[++i];
    else if (a == "--no-minimize")
      opt.minimize = false;
    else if (a == "--replay" && i + 1 < argc) {
      // Replay a corpus directory instead of fuzzing.
      long total = 0;
      std::vector<fuzz::Case> failures;
      const int bad = fuzz::replay_corpus_dir(argv[++i], &total, &failures);
      for (const auto& c : failures)
        std::printf("FAIL %s\n", fuzz::format_line(c).c_str());
      std::printf("fuzz replay: %ld records, %d failing\n", total, bad);
      return bad == 0 ? 0 : 2;
    } else {
      return bad_usage("unknown flag '" + a + "'");
    }
  }
  if (opt.cases <= 0) return usage();
  const fuzz::Stats st = fuzz::run(opt);
  for (const auto& c : st.failures)
    std::printf("FAIL %s\n", fuzz::format_line(c).c_str());
  std::printf("fuzz: seed=%llu cases=%ld (", (unsigned long long)opt.seed,
              st.cases);
  for (int s = 0; s < fuzz::kSurfaceCount; ++s)
    std::printf("%s%s=%ld", s ? " " : "", fuzz::surface_name(s),
                st.per_surface[s]);
  std::printf(") mismatches=%ld digest=%016llx\n", st.mismatches,
              (unsigned long long)st.digest);
  return st.mismatches == 0 ? 0 : 2;
}

int cmd_inject(int argc, char** argv) {
  // Fault-injection campaign (src/resilience): sweep formats x sites x bit
  // fields with seeded single-bit flips, classify each solve against the
  // GMP-verified clean solution.  Deterministic per seed and thread count.
  resilience::CampaignOptions opt;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--solver" && i + 1 < argc)
      opt.solver = argv[++i];
    else if (a == "--seed" && i + 1 < argc)
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    else if (a == "--trials" && i + 1 < argc)
      opt.trials = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--formats" && i + 1 < argc)
      opt.formats = argv[++i];
    else if (a == "--n" && i + 1 < argc)
      opt.n = int(std::strtol(argv[++i], nullptr, 10));
    else if (a == "--cond" && i + 1 < argc)
      opt.cond = std::strtod(argv[++i], nullptr);
    else if (a == "--recovery")
      opt.recovery = true;
    else if (a == "--json" && i + 1 < argc)
      json_path = argv[++i];
    else
      return bad_usage("unknown flag '" + a + "'");
  }
  if (opt.trials <= 0 || opt.n < 4 ||
      (opt.solver != "cg" && opt.solver != "cholesky" && opt.solver != "ir"))
    return usage();
  const auto result = resilience::run_campaign(opt);
  core::Table t({"Format", "Site", "Field", "Masked", "Corrected", "Detected",
                 "SDC", "Hang"});
  for (const auto& c : result.cells)
    t.row({c.format, la::fault::to_string(c.site),
           resilience::to_string(c.field),
           core::fmt_int(c.counts[0]), core::fmt_int(c.counts[1]),
           core::fmt_int(c.counts[2]), core::fmt_int(c.counts[3]),
           core::fmt_int(c.counts[4])});
  t.print();
  int totals[resilience::kOutcomeCount] = {0, 0, 0, 0, 0};
  for (const auto& c : result.cells)
    for (int o = 0; o < resilience::kOutcomeCount; ++o)
      totals[o] += c.counts[o];
  std::printf(
      "inject: solver=%s seed=%llu recovery=%s masked=%d corrected=%d "
      "detected=%d sdc=%d hang=%d digest=%016llx\n",
      opt.solver.c_str(), (unsigned long long)opt.seed,
      opt.recovery ? "on" : "off", totals[0], totals[1], totals[2], totals[3],
      totals[4], (unsigned long long)result.digest);
  if (!json_path.empty())
    return emit_json(json_path, resilience::campaign_json(result));
  return 0;
}

// The dispatch table.  Every subcommand is a row here; an argv[1] that
// matches no row is an error naming the token, never a silent fallthrough.
struct Command {
  const char* name;
  int (*fn)(int argc, char** argv);
};

constexpr Command kCommands[] = {
    {"list", cmd_list},
    {"gen-mtx", cmd_gen_mtx},
    {"cg", cmd_cg},
    {"chol", cmd_chol},
    {"ir", cmd_ir},
    {"lu-ir", cmd_lu_ir},
    {"lu_ir", cmd_lu_ir},
    {"gmres-ir", cmd_gmres_ir},
    {"gmres_ir", cmd_gmres_ir},
    {"serve", cmd_serve},
    {"serve-client", cmd_serve_client},
    {"chaos", cmd_chaos},
    {"kernels", cmd_kernels},
    {"precision", cmd_precision},
    {"fuzz", cmd_fuzz},
    {"inject", cmd_inject},
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  lut::enable_defaults();  // table-driven small posits (PSTAB_LUT=0 disables)
  if (telemetry::env_requested()) telemetry::set_enabled(true);
  for (const Command& c : kCommands) {
    if (std::strcmp(argv[1], c.name) != 0) continue;
    try {
      return c.fn(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  std::fprintf(stderr, "pstab: unknown command '%s'\n", argv[1]);
  return usage();
}
