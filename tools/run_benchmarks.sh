#!/usr/bin/env sh
# Build (Release) and run the performance benchmarks, leaving their JSON
# artifacts in the build directory.
#
#   tools/run_benchmarks.sh [build-dir]        default build-dir: build-bench
#
# Env:
#   PSTAB_THREADS     worker count for the parallel columns (default: cores)
#   PSTAB_BENCH_FULL  =1 also re-run the figure benches (fig6..fig9)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 1)" \
  --target perf_ops fig6_cg fig7_cg_rescaled fig8_cholesky fig9_cholesky_rescaled

cd "$build_dir"
echo "== perf_ops: LUT vs scalar (writes BENCH_posit_ops.json) =="
./bench/perf_ops --out BENCH_posit_ops.json

if [ "${PSTAB_BENCH_FULL:-0}" = "1" ]; then
  for b in fig6_cg fig7_cg_rescaled fig8_cholesky fig9_cholesky_rescaled; do
    echo "== $b =="
    ./bench/"$b"
  done
fi

echo "benchmark artifacts in $build_dir:"
ls -l "$build_dir"/BENCH_*.json 2>/dev/null || true
