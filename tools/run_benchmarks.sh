#!/usr/bin/env sh
# Build (Release) and run the performance benchmarks, leaving their JSON
# artifacts in the build directory.
#
#   tools/run_benchmarks.sh [build-dir]        default build-dir: build-bench
#
# Env:
#   PSTAB_THREADS     worker count for the parallel columns (default: cores)
#   PSTAB_BENCH_FULL  =1 also run the remaining figure/table benches
#   PSTAB_BLOCKED_N   large-n size for perf_blocked (default 10000; set
#                     2048 for a quick pass — the n=10^4 unblocked
#                     reference run takes minutes by construction)
#
# Always runs fig6_cg, so every invocation leaves a schema-checked
# RESULTS_cg.json (the acceptance artifact for the telemetry layer),
# perf_kernels, which leaves BENCH_kernels.json (the acceptance artifact for
# the batched kernel backends), and the general-systems refinement pair
# table_lu_ir / ablation_gmres_ir, which leave RESULTS_lu_ir.json and
# RESULTS_gmres_ir.json (the acceptance artifacts for the LU-IR / GMRES-IR
# solvers); with PSTAB_BENCH_FULL=1 the other experiment benches add their
# RESULTS_*.json files.  Every artifact is validated with
# tools/check_results_schema.py when python3 is available.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-bench"}

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc 2>/dev/null || echo 1)" \
  --target perf_ops perf_kernels perf_blocked fig6_cg fig7_cg_rescaled \
           fig8_cholesky fig9_cholesky_rescaled table2_ir_naive \
           table3_ir_higham table_lu_ir ablation_gmres_ir

cd "$build_dir"
echo "== perf_ops: LUT vs scalar (writes BENCH_posit_ops.json) =="
./bench/perf_ops --out BENCH_posit_ops.json

echo "== perf_kernels: scalar vs batched backends (writes BENCH_kernels.json) =="
./bench/perf_kernels

echo "== perf_blocked: blocked vs unblocked factorizations (writes BENCH_blocked.json) =="
./bench/perf_blocked

echo "== fig6_cg (writes RESULTS_cg.json) =="
./bench/fig6_cg

echo "== table_lu_ir (writes RESULTS_lu_ir.json) =="
./bench/table_lu_ir

echo "== ablation_gmres_ir (writes RESULTS_gmres_ir.json) =="
./bench/ablation_gmres_ir

if [ "${PSTAB_BENCH_FULL:-0}" = "1" ]; then
  for b in fig7_cg_rescaled fig8_cholesky fig9_cholesky_rescaled \
           table2_ir_naive table3_ir_higham; do
    echo "== $b =="
    ./bench/"$b"
  done
fi

if command -v python3 >/dev/null 2>&1; then
  echo "== schema check =="
  python3 "$repo_root/tools/check_results_schema.py" \
    "$build_dir"/RESULTS_*.json "$build_dir"/BENCH_kernels.json \
    "$build_dir"/BENCH_blocked.json
else
  echo "python3 not found; skipping results schema check"
fi

echo "benchmark artifacts in $build_dir:"
ls -l "$build_dir"/BENCH_*.json "$build_dir"/RESULTS_*.json 2>/dev/null || true
