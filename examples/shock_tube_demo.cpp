// Sod shock tube across number formats (the paper's §VII CFD future work).
//
//   $ ./shock_tube_demo [cells]
//
// Integrates the 1D Euler equations to t = 0.2 in six formats, prints the
// density profile error vs the double-precision run, and dumps an ASCII
// rendering of the Posit(16,1) and Float16 profiles so the difference is
// visible by eye.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/shock_tube.hpp"
#include "ieee/softfloat.hpp"
#include "posit/posit.hpp"

int main(int argc, char** argv) {
  using namespace pstab;
  apps::SodOptions opt;
  opt.cells = argc > 1 ? std::atoi(argv[1]) : 200;
  std::printf("Sod shock tube, %d cells, t_end=%.2f (Rusanov flux)\n\n",
              opt.cells, opt.t_end);

  std::printf("relative L1 density error vs Float64:\n");
  std::printf("  Float16     %.3e\n", apps::sod_density_error<Half>(opt));
  std::printf("  Posit(16,1) %.3e\n",
              apps::sod_density_error<Posit16_1>(opt));
  std::printf("  Posit(16,2) %.3e\n",
              apps::sod_density_error<Posit16_2>(opt));
  std::printf("  Float32     %.3e\n", apps::sod_density_error<float>(opt));
  std::printf("  Posit(32,2) %.3e\n",
              apps::sod_density_error<Posit32_2>(opt));
  std::printf("  Posit(32,3) %.3e\n",
              apps::sod_density_error<Posit32_3>(opt));

  // ASCII density profiles (downsampled to 64 columns).
  auto h = apps::sod_initial<Half>(opt.cells, opt.gamma);
  apps::sod_run(h, opt);
  auto p = apps::sod_initial<Posit16_1>(opt.cells, opt.gamma);
  apps::sod_run(p, opt);
  auto d = apps::sod_initial<double>(opt.cells, opt.gamma);
  apps::sod_run(d, opt);

  std::printf("\ndensity profile (.=Float64, o=Posit(16,1), x=Float16):\n");
  const int rows = 16, cols = 64;
  for (int r = rows; r >= 0; --r) {
    const double level = 0.1 + (1.05 - 0.1) * r / rows;
    std::string line(cols, ' ');
    for (int c = 0; c < cols; ++c) {
      const int i = c * opt.cells / cols;
      const double band = (1.05 - 0.1) / rows / 2;
      if (std::fabs(d.rho[i] - level) < band) line[c] = '.';
      if (std::fabs(p.rho[i].to_double() - level) < band) line[c] = 'o';
      if (std::fabs(h.rho[i].to_double() - level) < band) line[c] = 'x';
    }
    std::printf("%5.2f |%s\n", level, line.c_str());
  }
  std::printf("       %s\n", std::string(cols, '-').c_str());
  return 0;
}
