// FFT accuracy across formats (the paper's §VII signal-processing future
// work), including the golden-zone pre-scaling trick.
//
//   $ ./fft_accuracy [log2_n]
//
// Transforms a mixed-tone signal at three amplitudes and shows how
// pre-scaling the badly scaled signal by a power of two restores posit
// accuracy — the same lesson as the paper's matrix re-scaling.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/fft.hpp"
#include "ieee/softfloat.hpp"
#include "posit/posit.hpp"

int main(int argc, char** argv) {
  using namespace pstab;
  const int log2n = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::size_t n = std::size_t(1) << log2n;

  std::vector<double> sig(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = double(i) / double(n);
    sig[i] = std::sin(2 * M_PI * 3 * x) + 0.25 * std::cos(2 * M_PI * 57 * x);
  }

  std::printf("FFT of %zu samples, round-trip relative L2 error:\n\n", n);
  std::printf("%-22s %-12s %-12s %-12s\n", "signal", "Float16", "Posit(16,2)",
              "Posit(16,1)");
  for (const double scale : {1.0, 4096.0}) {
    std::vector<double> s = sig;
    for (auto& v : s) v *= scale;
    std::printf("amplitude %-12.0f %-12.2e %-12.2e %-12.2e\n", scale,
                apps::fft_roundtrip_error<Half>(s),
                apps::fft_roundtrip_error<Posit16_2>(s),
                apps::fft_roundtrip_error<Posit16_1>(s));
  }

  // The re-scaling lesson: divide the loud signal by 2^12 first (exact in
  // both formats), transform, and the posit error returns to golden-zone
  // levels.  FFT magnitudes also grow ~sqrt(n) internally, so scaling a bit
  // BELOW 1.0 is even better for posits.
  std::vector<double> loud = sig;
  for (auto& v : loud) v *= 4096.0;
  std::vector<double> rescaled = loud;
  for (auto& v : rescaled) v /= 4096.0;
  std::printf("\nloud signal pre-scaled by 2^-12: Posit(16,2) error %.2e "
              "(vs %.2e unscaled)\n",
              apps::fft_roundtrip_error<Posit16_2>(rescaled),
              apps::fft_roundtrip_error<Posit16_2>(loud));
  return 0;
}
