// Solve a linear system from the paper's suite in several number formats and
// compare convergence — the paper's core experiment as a 40-line program.
//
//   $ ./solve_system [matrix-name] [--rescale]
//
// Runs CG in Float64/Float32/Posit(32,2)/Posit(32,3) on one suite matrix
// (default nos1, where the unscaled posit trouble starts) and prints the
// iteration counts and true residuals.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiments.hpp"
#include "matrices/suite.hpp"

int main(int argc, char** argv) {
  using namespace pstab;
  std::string name = "nos1";
  bool rescale = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rescale") == 0)
      rescale = true;
    else
      name = argv[i];
  }
  if (!matrices::find_spec(name)) {
    std::fprintf(stderr, "unknown matrix '%s'; Table I names are:\n",
                 name.c_str());
    for (const auto& s : matrices::table1_specs())
      std::fprintf(stderr, "  %s\n", s.name.c_str());
    return 1;
  }

  const auto& m = matrices::suite_matrix(name);
  std::printf("matrix %s: n=%d nnz=%zu cond=%.2e ||A||2=%.2e%s\n\n",
              name.c_str(), m.n, m.csr.nnz(), m.cond_measured(),
              m.lambda_max, rescale ? "  [rescaled ||A||inf -> 2^10]" : "");

  core::SolveRequest req;
  req.rescale = rescale;
  const auto row = core::run_cg_experiment(m, req);

  const auto show = [](const char* fmt, const core::CgCell& c) {
    if (c.status == la::CgStatus::converged)
      std::printf("%-12s converged in %5d iterations, true relres %.2e\n",
                  fmt, c.iterations, c.true_relres);
    else
      std::printf("%-12s %s after %d iterations (true relres %.2e)\n", fmt,
                  c.status == la::CgStatus::breakdown ? "BROKE DOWN"
                                                      : "hit the cap",
                  c.iterations, c.true_relres);
  };
  show("Float64", row.f64);
  show("Float32", row.f32);
  show("Posit(32,2)", row.p32_2);
  show("Posit(32,3)", row.p32_3);

  if (!rescale)
    std::printf("\nTip: rerun with --rescale to see the paper's fix.\n");
  return 0;
}
