// Mixed-precision iterative refinement walkthrough (paper §V-D): factor in a
// 16-bit format, refine in Float64, with and without Higham's scaling.
//
//   $ ./mixed_precision [matrix-name]
//
// Prints, for Float16 / Posit(16,1) / Posit(16,2): whether the naive
// factorization survives, and how many refinement steps each needs after
// Higham scaling with the per-format mu.
#include <cstdio>
#include <string>

#include "core/experiments.hpp"
#include "ieee/softfloat.hpp"
#include "matrices/suite.hpp"
#include "scaling/higham.hpp"

int main(int argc, char** argv) {
  using namespace pstab;
  const std::string name = argc > 1 ? argv[1] : "bcsstk09";
  if (!matrices::find_spec(name)) {
    std::fprintf(stderr, "unknown suite matrix '%s'\n", name.c_str());
    return 1;
  }
  const auto& m = matrices::suite_matrix(name);
  std::printf("matrix %s: n=%d cond=%.2e ||A||2=%.2e\n\n", name.c_str(), m.n,
              m.cond_measured(), m.lambda_max);

  const auto show = [](const char* fmt, const la::IrReport& r) {
    switch (r.status) {
      case la::IrStatus::converged:
        std::printf("  %-12s %4d refinement steps (backward error %.1e, "
                    "16-bit factor error %.1e)\n",
                    fmt, r.iterations, r.final_berr, r.factorization_error);
        break;
      case la::IrStatus::max_iterations:
        std::printf("  %-12s 1000+ steps, still refining\n", fmt);
        break;
      case la::IrStatus::factorization_failed:
        std::printf("  %-12s factorization FAILED (column %s)\n", fmt,
                    r.chol_status == la::CholStatus::arithmetic_error
                        ? "hit an arithmetic error"
                        : "lost positive definiteness");
        break;
      case la::IrStatus::diverged:
        std::printf("  %-12s refinement diverged (factor too inaccurate)\n",
                    fmt);
        break;
      default:  // remaining SolveStatus values are not produced by mixed_ir
        std::printf("  %-12s %s\n", fmt, la::to_string(r.status));
        break;
    }
  };

  std::printf("naive (factor fl16(A) directly):\n");
  const auto naive = core::run_ir_experiment(m);
  show("Float16", naive.f16);
  show("Posit(16,1)", naive.p16_1);
  show("Posit(16,2)", naive.p16_2);

  std::printf("\nHigham-scaled (A_h = fl16(mu * R A R)):\n");
  std::printf("  mu: Float16 %.0f, Posit(16,1) %.0f, Posit(16,2) %.0f\n",
              scaling::mu_ieee<Half>(), scaling::mu_posit<16, 1>(),
              scaling::mu_posit<16, 2>());
  core::SolveRequest req;
  req.solver = core::Solver::ir;
  req.rescale = true;  // Higham scaling
  const auto scaled = core::run_ir_experiment(m, req);
  show("Float16", scaled.f16);
  show("Posit(16,1)", scaled.p16_1);
  show("Posit(16,2)", scaled.p16_2);

  std::printf("\npercent step reduction, best posit vs Float16: %.1f%%\n",
              scaled.pct_reduction());
  return 0;
}
