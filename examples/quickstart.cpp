// Quickstart: the posit number system in five minutes.
//
//   $ ./quickstart
//
// Shows construction, the golden zone, tapered precision, NaR semantics,
// exact quire accumulation, and conversion between formats.
#include <cstdio>

#include "posit/posit.hpp"
#include "posit/posit_math.hpp"
#include "posit/quire.hpp"

int main() {
  using namespace pstab;
  using P32 = Posit32_2;   // the standard 32-bit posit (ES = 2)
  using P16 = Posit16_2;

  std::printf("== positstab quickstart ==\n\n");

  // Construction and arithmetic look like any numeric type.
  const P32 a{1.5}, b{2.25};
  std::printf("1.5 + 2.25 = %s\n", to_string(a + b).c_str());
  std::printf("1.5 * 2.25 = %s\n", to_string(a * b).c_str());
  std::printf("sqrt(2)    = %s\n", to_string(sqrt(P32{2.0})).c_str());

  // Format constants: posits trade a huge range against tapered precision.
  std::printf("\nPosit(32,2): useed=%g  maxpos=%.3g  minpos=%.3g\n",
              P32::useed, P32::maxpos().to_double(),
              P32::minpos().to_double());
  std::printf("Posit(16,2): maxpos=%.3g (Float16 tops out at 65504)\n",
              P16::maxpos().to_double());

  // Tapered precision: fraction bits depend on magnitude (the golden zone).
  for (const double x : {1.0, 1e3, 1e9, 1e30}) {
    std::printf("fraction bits of Posit(32,2) at %.0e: %d  (Float32 has 23)\n",
                x, P32::from_double(x).fraction_bits());
  }

  // No underflow, no overflow: saturation at minpos/maxpos, and a single
  // non-real value NaR instead of the IEEE inf/NaN menagerie.
  std::printf("\n1e300 as Posit(16,2): %s (saturates, never NaR)\n",
              to_string(P16::from_double(1e300)).c_str());
  std::printf("1/0 = %s, sqrt(-1) = %s\n",
              to_string(P32{1.0} / P32{0.0}).c_str(),
              to_string(sqrt(P32{-1.0})).c_str());

  // The quire: exact sums of products, rounded once.
  Quire<32, 2> q;
  q.add(P32::from_double(1e20));
  q.add(P32::from_double(3.0));
  q.add(P32::from_double(-1e20));
  std::printf("\nquire(1e20 + 3 - 1e20) = %s (round-per-op loses the 3)\n",
              to_string(q.to_posit()).c_str());

  // Cross-format conversion with one correct rounding.
  const P16 narrow = P32::from_double(3.14159265358979).recast<16, 2>();
  std::printf("pi as Posit(32,2) -> Posit(16,2): %s\n",
              to_string(narrow).c_str());
  return 0;
}
